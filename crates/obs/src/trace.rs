//! Per-query event tracing for the OPPSLA attack and synthesis loops.
//!
//! Where the telemetry counters (the crate root) answer *how many* queries
//! each phase spent, a trace answers *which* queries: every oracle call is
//! recorded with its sequence number, image, phase, pixel location,
//! perturbation, routing (full / delta / batch-hit / batch-miss), delta-
//! cache classification, and resulting margin / label flip — and every
//! Metropolis–Hastings synthesis step with its pretty-printed condition,
//! score, and accept/reject decision. A recorded trace can be *replayed*
//! (`trace_replay` re-executes the queries and verifies scores and
//! accounting byte-identically) or *aggregated* (`trace_report`).
//!
//! # Design
//!
//! * **Feature-gated and runtime-armed.** The hooks compile to inert
//!   inline no-ops without the `trace` cargo feature (0 ns on the query
//!   hot path, verified by `forward_bench`). With the feature on they
//!   still cost one relaxed atomic load until [`start`] arms the
//!   recorder.
//! * **TLS buffers, global merge.** Like the counters, records accumulate
//!   in a per-thread buffer (no locks on the hot path beyond an amortized
//!   flush every [`TLS_BUF_CAP`] records) and merge into a process-global
//!   sink on flush/thread exit. Worker threads flush before their scope
//!   joins (see `oppsla_core::parallel`).
//! * **Bounded memory, spill to disk.** The global sink either streams
//!   JSONL straight to a file ([`TraceConfig::path`]) — memory then stays
//!   bounded by the TLS buffers — or keeps an in-memory ring capped at
//!   [`TraceConfig::mem_cap`] records, counting (never silently hiding)
//!   drops.
//! * **Deterministic content for any thread count.** Every record is
//!   addressed by `(section, round, lane, image, sub)`: sections and
//!   rounds advance only on the coordinating thread between parallel
//!   regions, the per-image index and per-run `sub` counter are set
//!   inside each worker's item closure, and main-thread metadata records
//!   carry a global emission sequence. File line order depends on worker
//!   scheduling, but sorting by [`Record::canonical_key`] yields a
//!   byte-identical stream for any `--threads` value.
//!
//! The record types and JSONL codec below are compiled unconditionally so
//! `trace_replay` / `trace_report` work in any build; only the recorder
//! statics are feature-gated.

use std::fmt::Write as _;
use std::io;
use std::path::PathBuf;

/// Whether this build can record traces (`trace` cargo feature).
pub const fn enabled() -> bool {
    cfg!(feature = "trace")
}

/// Records flushed from a thread-local buffer to the global sink per
/// batch; bounds per-thread memory and amortizes the sink lock.
pub const TLS_BUF_CAP: usize = 256;

/// Sentinel for "no pixel": full-image queries carry this row/col.
pub const NO_PIXEL: u32 = u32::MAX;

/// Sentinel section id for end-of-run records ([`Body::Ops`],
/// [`Body::Summary`]): sorts after every data section.
pub const END_SECTION: u32 = u32::MAX;

// ---------------------------------------------------------------------------
// Record types (compiled unconditionally).
// ---------------------------------------------------------------------------

/// One trace record: a canonical address plus a kind-specific body.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Unit of work over one (model, image set); assigned by
    /// [`begin_section`] on the coordinating thread.
    pub section: u32,
    /// Evaluation sweep within the section; advanced by [`begin_sweep`].
    pub round: u32,
    /// 0 = coordinating-thread metadata, 1 = per-image events. Metadata
    /// sorts ahead of the round's per-image records.
    pub lane: u8,
    /// Index of the image within the sweep's set (0 for metadata).
    pub image: u32,
    /// Emission sequence: a global counter for metadata records, a
    /// per-image-run counter (reset by [`set_image`]) for lane-1 records.
    pub sub: u64,
    /// The event payload.
    pub body: Body,
}

/// A trace record payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Body {
    /// Starts a section: everything until the next `Section` runs against
    /// one model and one deterministically reconstructible image set.
    Section {
        /// Human-readable section label (e.g. `fig3/cifar/resnet20/oppsla`).
        label: String,
        /// Model-zoo scale id (e.g. `cifar`).
        scale: String,
        /// Architecture id the queries ran against.
        arch: String,
        /// Image-set kind (`test` or `synth_train`).
        set: String,
        /// Images per class in the set.
        per_class: u32,
        /// Seed the set was drawn with.
        set_seed: u64,
        /// Per-image query budget (0 = unlimited).
        budget: u64,
        /// Attack name, or `synthesis` for a synthesizer section.
        attack: String,
        /// Base seed of the attack/synthesis RNG.
        attack_seed: u64,
    },
    /// Narrows the section's set to images of one class (per-class
    /// synthesis); image indices that follow are relative to the slice.
    Class {
        /// The class whose images remain.
        class: u32,
    },
    /// Narrows the current set to the listed indices (attackability
    /// prefilter); image indices that follow are relative to `kept`.
    Filter {
        /// Kept indices into the previous set, ascending.
        kept: Vec<u32>,
    },
    /// Starts an evaluation sweep (one parallel region): all lane-1
    /// records of this round ran under it.
    Sweep {
        /// Sweep kind (`prefilter`, `eval`, `attack_eval`, `transfer`).
        sweep: String,
        /// Number of images in the sweep.
        n: u32,
        /// Pretty-printed candidate program ("" when not applicable).
        program: String,
    },
    /// One Metropolis–Hastings synthesis step (after its eval sweep).
    Synth {
        /// MH iteration index (0 = initial program).
        step: u32,
        /// Pretty-printed proposal.
        program: String,
        /// Score (average queries over the training images).
        score: f64,
        /// Whether the proposal was accepted.
        accepted: bool,
    },
    /// One oracle query.
    Query {
        /// Attack phase (`baseline`, `init_scan`, `refine`, `refine_b3`,
        /// `refine_b4`).
        phase: String,
        /// Oracle routing (`full`, `delta`, `batch_hit`, `batch_miss`,
        /// `batch`, or `none` when untagged).
        route: String,
        /// Delta-cache classification (`hit`, `rebase`, `cold`, or `none`
        /// when no single-image incremental forward ran).
        cache: String,
        /// 1-based query ordinal within the image's run (the oracle's
        /// count after this query).
        seq: u64,
        /// Perturbed pixel row ([`NO_PIXEL`] for full-image queries).
        row: u32,
        /// Perturbed pixel column ([`NO_PIXEL`] for full-image queries).
        col: u32,
        /// Perturbation red channel.
        r: f32,
        /// Perturbation green channel.
        g: f32,
        /// Perturbation blue channel.
        b: f32,
        /// Resulting margin (negative = adversarial).
        margin: f32,
        /// Predicted class (argmax).
        pred: u32,
        /// Whether the prediction differs from the true class.
        flip: bool,
    },
    /// A synthesized-condition firing (recorded when it fires).
    Cond {
        /// Condition id (`b1`..`b4`).
        cond: String,
    },
    /// Per-image run summary (one attack finished).
    Run {
        /// Queries the run spent.
        queries: u64,
        /// Whether the attack succeeded.
        success: bool,
    },
    /// Per-op forward-pass time, from the telemetry totals at [`finish`]
    /// (wall-clock: excluded from canonical A/B diffs by `--no-ops`).
    Ops {
        /// Op kind wire name (`conv2d`, `linear`, …).
        op: String,
        /// Summed nanoseconds.
        ns: u64,
        /// Executions.
        calls: u64,
    },
    /// End-of-trace accounting, written by [`finish`].
    Summary {
        /// Data records written before this summary.
        records: u64,
        /// Records dropped by the bounded in-memory sink.
        dropped: u64,
    },
}

impl Record {
    /// The canonical sort key: `(section, round, lane, image, sub)`.
    /// Sorting by it yields identical streams for any worker thread
    /// count.
    pub fn canonical_key(&self) -> (u32, u32, u8, u32, u64) {
        (self.section, self.round, self.lane, self.image, self.sub)
    }

    /// The record kind's wire name.
    pub fn kind(&self) -> &'static str {
        match self.body {
            Body::Section { .. } => "section",
            Body::Class { .. } => "class",
            Body::Filter { .. } => "filter",
            Body::Sweep { .. } => "sweep",
            Body::Synth { .. } => "synth",
            Body::Query { .. } => "query",
            Body::Cond { .. } => "cond",
            Body::Run { .. } => "run",
            Body::Ops { .. } => "ops",
            Body::Summary { .. } => "summary",
        }
    }

    /// Serializes the record as one JSON object (no trailing newline).
    /// Floats use Rust's shortest round-trip formatting, so
    /// [`Record::parse`] reproduces them bit-identically.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(128);
        let _ = write!(
            s,
            "{{\"k\":\"{}\",\"sec\":{},\"rnd\":{},\"lane\":{},\"img\":{},\"sub\":{}",
            self.kind(),
            self.section,
            self.round,
            self.lane,
            self.image,
            self.sub
        );
        fn str_field(s: &mut String, key: &str, v: &str) {
            let _ = write!(s, ",\"{key}\":");
            push_json_string(s, v);
        }
        match &self.body {
            Body::Section {
                label,
                scale,
                arch,
                set,
                per_class,
                set_seed,
                budget,
                attack,
                attack_seed,
            } => {
                str_field(&mut s, "label", label);
                str_field(&mut s, "scale", scale);
                str_field(&mut s, "arch", arch);
                str_field(&mut s, "set", set);
                let _ = write!(
                    s,
                    ",\"per_class\":{per_class},\"set_seed\":{set_seed},\"budget\":{budget}"
                );
                str_field(&mut s, "attack", attack);
                let _ = write!(s, ",\"attack_seed\":{attack_seed}");
            }
            Body::Class { class } => {
                let _ = write!(s, ",\"class\":{class}");
            }
            Body::Filter { kept } => {
                s.push_str(",\"kept\":[");
                for (i, k) in kept.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "{k}");
                }
                s.push(']');
            }
            Body::Sweep { sweep, n, program } => {
                str_field(&mut s, "sweep", sweep);
                let _ = write!(s, ",\"n\":{n}");
                str_field(&mut s, "program", program);
            }
            Body::Synth {
                step,
                program,
                score,
                accepted,
            } => {
                let _ = write!(s, ",\"step\":{step}");
                str_field(&mut s, "program", program);
                let _ = write!(s, ",\"score\":{score},\"accepted\":{accepted}");
            }
            Body::Query {
                phase,
                route,
                cache,
                seq,
                row,
                col,
                r,
                g,
                b,
                margin,
                pred,
                flip,
            } => {
                str_field(&mut s, "phase", phase);
                str_field(&mut s, "route", route);
                str_field(&mut s, "cache", cache);
                let _ = write!(
                    s,
                    ",\"seq\":{seq},\"row\":{row},\"col\":{col},\"r\":{r},\"g\":{g},\"b\":{b},\"margin\":{margin},\"pred\":{pred},\"flip\":{flip}"
                );
            }
            Body::Cond { cond } => {
                str_field(&mut s, "cond", cond);
            }
            Body::Run { queries, success } => {
                let _ = write!(s, ",\"queries\":{queries},\"success\":{success}");
            }
            Body::Ops { op, ns, calls } => {
                str_field(&mut s, "op", op);
                let _ = write!(s, ",\"ns\":{ns},\"calls\":{calls}");
            }
            Body::Summary { records, dropped } => {
                let _ = write!(s, ",\"records\":{records},\"dropped\":{dropped}");
            }
        }
        s.push('}');
        s
    }

    /// Parses one JSONL line produced by [`Record::to_jsonl`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed token or missing
    /// field.
    pub fn parse(line: &str) -> Result<Record, String> {
        let fields = parse_flat_json(line)?;
        let get = |key: &str| -> Result<&JsonScalar, String> {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field {key:?} in {line:?}"))
        };
        let get_str = |key: &str| -> Result<String, String> {
            match get(key)? {
                JsonScalar::Str(s) => Ok(s.clone()),
                other => Err(format!("field {key:?}: expected string, got {other:?}")),
            }
        };
        let get_bool = |key: &str| -> Result<bool, String> {
            match get(key)? {
                JsonScalar::Bool(b) => Ok(*b),
                other => Err(format!("field {key:?}: expected bool, got {other:?}")),
            }
        };
        fn num<T: std::str::FromStr>(raw: &str, key: &str) -> Result<T, String> {
            raw.parse()
                .map_err(|_| format!("field {key:?}: bad number {raw:?}"))
        }
        let get_num = |key: &str| -> Result<String, String> {
            match get(key)? {
                JsonScalar::Num(raw) => Ok(raw.clone()),
                other => Err(format!("field {key:?}: expected number, got {other:?}")),
            }
        };
        let get_u64 = |key: &str| -> Result<u64, String> { num(&get_num(key)?, key) };
        let get_u32 = |key: &str| -> Result<u32, String> { num(&get_num(key)?, key) };
        let get_f32 = |key: &str| -> Result<f32, String> { num(&get_num(key)?, key) };
        let get_f64 = |key: &str| -> Result<f64, String> { num(&get_num(key)?, key) };

        let kind = get_str("k")?;
        let body = match kind.as_str() {
            "section" => Body::Section {
                label: get_str("label")?,
                scale: get_str("scale")?,
                arch: get_str("arch")?,
                set: get_str("set")?,
                per_class: get_u32("per_class")?,
                set_seed: get_u64("set_seed")?,
                budget: get_u64("budget")?,
                attack: get_str("attack")?,
                attack_seed: get_u64("attack_seed")?,
            },
            "class" => Body::Class {
                class: get_u32("class")?,
            },
            "filter" => {
                let kept = match get("kept")? {
                    JsonScalar::Arr(items) => items
                        .iter()
                        .map(|raw| num::<u32>(raw, "kept"))
                        .collect::<Result<Vec<u32>, String>>()?,
                    other => return Err(format!("field \"kept\": expected array, got {other:?}")),
                };
                Body::Filter { kept }
            }
            "sweep" => Body::Sweep {
                sweep: get_str("sweep")?,
                n: get_u32("n")?,
                program: get_str("program")?,
            },
            "synth" => Body::Synth {
                step: get_u32("step")?,
                program: get_str("program")?,
                score: get_f64("score")?,
                accepted: get_bool("accepted")?,
            },
            "query" => Body::Query {
                phase: get_str("phase")?,
                route: get_str("route")?,
                cache: get_str("cache")?,
                seq: get_u64("seq")?,
                row: get_u32("row")?,
                col: get_u32("col")?,
                r: get_f32("r")?,
                g: get_f32("g")?,
                b: get_f32("b")?,
                margin: get_f32("margin")?,
                pred: get_u32("pred")?,
                flip: get_bool("flip")?,
            },
            "cond" => Body::Cond {
                cond: get_str("cond")?,
            },
            "run" => Body::Run {
                queries: get_u64("queries")?,
                success: get_bool("success")?,
            },
            "ops" => Body::Ops {
                op: get_str("op")?,
                ns: get_u64("ns")?,
                calls: get_u64("calls")?,
            },
            "summary" => Body::Summary {
                records: get_u64("records")?,
                dropped: get_u64("dropped")?,
            },
            other => return Err(format!("unknown record kind {other:?}")),
        };
        Ok(Record {
            section: get_u32("sec")?,
            round: get_u32("rnd")?,
            lane: num(&get_num("lane")?, "lane")?,
            image: get_u32("img")?,
            sub: get_u64("sub")?,
            body,
        })
    }
}

/// Sorts records into their canonical, thread-count-invariant order
/// (stable, by [`Record::canonical_key`]).
pub fn canonical_sort(records: &mut [Record]) {
    records.sort_by_key(|r| r.canonical_key());
}

// ---------------------------------------------------------------------------
// Minimal flat-JSON codec (only what the record format needs).
// ---------------------------------------------------------------------------

/// A scalar (or flat integer array) value in a parsed trace line.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonScalar {
    /// A string, unescaped.
    Str(String),
    /// A number, kept as its raw text so callers parse it at the exact
    /// target type (preserving shortest-round-trip floats).
    Num(String),
    /// A boolean.
    Bool(bool),
    /// An array of raw number texts.
    Arr(Vec<String>),
}

/// Escapes `v` into `buf` as a JSON string literal (with quotes); the
/// inverse of the parser used by [`parse_flat_json`].
pub fn push_json_string(buf: &mut String, v: &str) {
    buf.push('"');
    for ch in v.chars() {
        match ch {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

/// Parses one flat JSON object (string/number/bool values plus flat
/// number arrays) into its key/value pairs in document order.
///
/// # Errors
///
/// Returns a description of the first syntax error. Nested objects are
/// rejected — trace records are flat by construction.
pub fn parse_flat_json(line: &str) -> Result<Vec<(String, JsonScalar)>, String> {
    let mut p = Parser {
        bytes: line.trim().as_bytes(),
        pos: 0,
    };
    p.expect(b'{')?;
    let mut out = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.next();
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err("trailing bytes after object".into());
        }
        return Ok(out);
    }
    loop {
        p.skip_ws();
        let key = p.string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        let value = p.value()?;
        out.push((key, value));
        p.skip_ws();
        match p.next() {
            Some(b',') => continue,
            Some(b'}') => break,
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing bytes after object".into());
    }
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!("expected {:?}, got {other:?}", want as char)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.next().ok_or("truncated \\u escape")?;
                            code = code * 16
                                + (d as char)
                                    .to_digit(16)
                                    .ok_or_else(|| format!("bad hex digit {:?}", d as char))?;
                        }
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("bad \\u escape {code:#x}"))?,
                        );
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: copy the whole sequence through.
                    let start = self.pos - 1;
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    if start + len > self.bytes.len() {
                        return Err("truncated UTF-8 sequence".into());
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|e| format!("bad UTF-8 in string: {e}"))?;
                    out.push_str(chunk);
                    self.pos = start + len;
                }
            }
        }
    }

    fn raw_number(&mut self) -> Result<String, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9' | b'i' | b'n' | b'f' | b'a' | b'N')
        ) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected number at byte {start}"));
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII")
            .to_owned())
    }

    fn value(&mut self) -> Result<JsonScalar, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonScalar::Str(self.string()?)),
            Some(b't') => {
                self.literal("true")?;
                Ok(JsonScalar::Bool(true))
            }
            Some(b'f') if self.bytes[self.pos..].starts_with(b"false") => {
                self.literal("false")?;
                Ok(JsonScalar::Bool(false))
            }
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JsonScalar::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.raw_number()?);
                    self.skip_ws();
                    match self.next() {
                        Some(b',') => continue,
                        Some(b']') => break,
                        other => return Err(format!("expected ',' or ']', got {other:?}")),
                    }
                }
                Ok(JsonScalar::Arr(items))
            }
            _ => Ok(JsonScalar::Num(self.raw_number()?)),
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("expected literal {word:?}"))
        }
    }
}

// ---------------------------------------------------------------------------
// Recorder configuration and public hook API.
// ---------------------------------------------------------------------------

/// How [`start`] should store the recorded stream.
#[derive(Debug, Clone, Default)]
pub struct TraceConfig {
    /// Spill target: records stream to this JSONL file as TLS buffers
    /// flush (memory stays bounded by the buffers). `None` keeps records
    /// in memory for [`drain_records`], capped at `mem_cap`.
    pub path: Option<PathBuf>,
    /// In-memory record cap when `path` is `None` (0 = default 1M).
    pub mem_cap: usize,
}

/// End-of-trace accounting returned by [`finish`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Data records written (before the trailing summary).
    pub records: u64,
    /// Records dropped by the bounded in-memory sink.
    pub dropped: u64,
    /// Sink I/O errors (failed writes/flushes to the spill file).
    pub io_errors: u64,
}

/// Oracle routing of one query, tagged by `core::oracle`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteTag {
    /// Full-image forward (`query_into`).
    Full,
    /// Single-pixel incremental forward (`query_pixel_delta_into`, no
    /// pending speculative batch).
    Delta,
    /// Served from a speculatively prefetched batch.
    BatchHit,
    /// A batch was pending but did not contain this candidate; the query
    /// ran incrementally.
    BatchMiss,
    /// Part of an explicit counted batch (`query_batch`).
    Batch,
}

impl RouteTag {
    /// The stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            RouteTag::Full => "full",
            RouteTag::Delta => "delta",
            RouteTag::BatchHit => "batch_hit",
            RouteTag::BatchMiss => "batch_miss",
            RouteTag::Batch => "batch",
        }
    }
}

/// Delta-cache classification of one query, tagged by the inference
/// engine when a single-image incremental forward actually runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTag {
    /// Base activations were already cached for this base image.
    Hit,
    /// The cache was recaptured for a new base image.
    Rebase,
    /// The cache was cold (first use).
    Cold,
}

impl CacheTag {
    /// The stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            CacheTag::Hit => "hit",
            CacheTag::Rebase => "rebase",
            CacheTag::Cold => "cold",
        }
    }
}

/// Everything a query site knows about one oracle query; routing and
/// cache tags are joined in from the thread-local pending tags set by
/// the oracle/engine during the call.
#[derive(Debug, Clone, Copy)]
pub struct QueryInfo {
    /// Attack phase wire name.
    pub phase: &'static str,
    /// The oracle's query count after this query (1-based ordinal).
    pub seq: u64,
    /// Perturbed pixel `(row, col, rgb)`; `None` for full-image queries.
    pub pixel: Option<(u32, u32, [f32; 3])>,
    /// Resulting margin (negative = adversarial).
    pub margin: f32,
    /// Predicted class (argmax of the returned scores).
    pub pred: u32,
    /// Whether the prediction differs from the true class.
    pub flip: bool,
}

/// Metadata identifying a section's model, image set, and attack; see
/// [`Body::Section`] for field semantics.
#[derive(Debug, Clone, Default)]
pub struct SectionMeta {
    /// Human-readable section label.
    pub label: String,
    /// Model-zoo scale id.
    pub scale: String,
    /// Architecture id.
    pub arch: String,
    /// Image-set kind (`test` or `synth_train`).
    pub set: String,
    /// Images per class.
    pub per_class: u32,
    /// Image-set seed.
    pub set_seed: u64,
    /// Per-image query budget (0 = unlimited).
    pub budget: u64,
    /// Attack name or `synthesis`.
    pub attack: String,
    /// Attack/synthesis RNG base seed.
    pub attack_seed: u64,
}

#[cfg(feature = "trace")]
mod rec {
    use super::{Body, Record, TraceStats, TLS_BUF_CAP};
    use std::cell::{Cell, RefCell};
    use std::fs::File;
    use std::io::{BufWriter, Write};
    use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering::Relaxed};
    use std::sync::Mutex;

    pub(super) static ARMED: AtomicBool = AtomicBool::new(false);
    pub(super) static SECTION: AtomicU32 = AtomicU32::new(u32::MAX);
    pub(super) static ROUND: AtomicU32 = AtomicU32::new(0);
    pub(super) static MAIN_SEQ: AtomicU64 = AtomicU64::new(0);

    pub(super) enum SinkMode {
        Mem(Vec<Record>),
        File(BufWriter<File>),
    }

    pub(super) struct SinkState {
        pub(super) mode: SinkMode,
        pub(super) records: u64,
        pub(super) dropped: u64,
        pub(super) io_errors: u64,
        pub(super) mem_cap: usize,
    }

    impl SinkState {
        pub(super) fn write(&mut self, rec: Record) {
            match &mut self.mode {
                SinkMode::Mem(buf) => {
                    if buf.len() < self.mem_cap {
                        buf.push(rec);
                        self.records += 1;
                    } else {
                        self.dropped += 1;
                    }
                }
                SinkMode::File(out) => {
                    let mut line = rec.to_jsonl();
                    line.push('\n');
                    if out.write_all(line.as_bytes()).is_err() {
                        self.io_errors += 1;
                    } else {
                        self.records += 1;
                    }
                }
            }
        }

        pub(super) fn stats(&self) -> TraceStats {
            TraceStats {
                records: self.records,
                dropped: self.dropped,
                io_errors: self.io_errors,
            }
        }
    }

    pub(super) static SINK: Mutex<Option<SinkState>> = Mutex::new(None);

    /// Locks the global sink, recovering from poisoning: a worker that
    /// panicked while holding the lock leaves the sink in a consistent
    /// state (every [`SinkState`] mutation is a single append/counter
    /// bump), so a long-running server must keep tracing rather than
    /// propagate the panic into every later query of every tenant.
    pub(super) fn lock_sink() -> std::sync::MutexGuard<'static, Option<SinkState>> {
        SINK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    struct TlsTrace {
        buf: RefCell<Vec<Record>>,
        image: Cell<u32>,
        sub: Cell<u64>,
        route: Cell<u8>,
        cache: Cell<u8>,
    }

    impl Drop for TlsTrace {
        fn drop(&mut self) {
            // Thread exit: spill this thread's residue before a scoped
            // join observes completion (workers also flush explicitly).
            flush_vec(&mut self.buf.borrow_mut());
        }
    }

    thread_local! {
        static TLS: TlsTrace = const {
            TlsTrace {
                buf: RefCell::new(Vec::new()),
                image: Cell::new(0),
                sub: Cell::new(0),
                route: Cell::new(0),
                cache: Cell::new(0),
            }
        };
    }

    fn flush_vec(buf: &mut Vec<Record>) {
        if buf.is_empty() {
            return;
        }
        let mut guard = lock_sink();
        match guard.as_mut() {
            Some(state) => {
                for rec in buf.drain(..) {
                    state.write(rec);
                }
            }
            None => buf.clear(),
        }
    }

    pub(super) fn flush_tls() {
        let _ = TLS.try_with(|t| flush_vec(&mut t.buf.borrow_mut()));
    }

    /// Appends a metadata record on the coordinating thread.
    pub(super) fn push_meta(body: Body) {
        let rec = Record {
            section: SECTION.load(Relaxed),
            round: ROUND.load(Relaxed),
            lane: 0,
            image: 0,
            sub: MAIN_SEQ.fetch_add(1, Relaxed),
            body,
        };
        push(rec);
    }

    /// Appends a per-image (lane 1) record on the calling worker.
    pub(super) fn push_image_event(body: Body) {
        let _ = TLS.try_with(|t| {
            let rec = Record {
                section: SECTION.load(Relaxed),
                round: ROUND.load(Relaxed),
                lane: 1,
                image: t.image.get(),
                sub: t.sub.replace(t.sub.get() + 1),
                body,
            };
            let mut buf = t.buf.borrow_mut();
            buf.push(rec);
            if buf.len() >= TLS_BUF_CAP {
                flush_vec(&mut buf);
            }
        });
    }

    fn push(rec: Record) {
        let _ = TLS.try_with(|t| {
            let mut buf = t.buf.borrow_mut();
            buf.push(rec);
            if buf.len() >= TLS_BUF_CAP {
                flush_vec(&mut buf);
            }
        });
    }

    pub(super) fn set_image(image: u32) {
        let _ = TLS.try_with(|t| {
            t.image.set(image);
            t.sub.set(0);
        });
    }

    pub(super) fn set_route(route: u8) {
        let _ = TLS.try_with(|t| {
            t.route.set(route);
            t.cache.set(0);
        });
    }

    pub(super) fn set_cache(cache: u8) {
        let _ = TLS.try_with(|t| t.cache.set(cache));
    }

    pub(super) fn take_tags() -> (u8, u8) {
        TLS.try_with(|t| (t.route.replace(0), t.cache.replace(0)))
            .unwrap_or((0, 0))
    }
}

/// Whether a trace is currently being recorded ([`start`] without a
/// matching [`finish`]). Always `false` without the `trace` feature.
#[inline(always)]
pub fn armed() -> bool {
    #[cfg(feature = "trace")]
    return rec::ARMED.load(std::sync::atomic::Ordering::Relaxed);
    #[cfg(not(feature = "trace"))]
    false
}

/// Arms the recorder. Any trace already being recorded is discarded.
///
/// With the `trace` feature off this is a no-op returning `Ok(())`;
/// callers that need to surface the dead switch check [`enabled`].
///
/// # Errors
///
/// Propagates creation of the spill file.
pub fn start(config: TraceConfig) -> io::Result<()> {
    #[cfg(feature = "trace")]
    {
        use std::sync::atomic::Ordering::Relaxed;
        let mode = match &config.path {
            Some(path) => {
                rec::SinkMode::File(std::io::BufWriter::new(std::fs::File::create(path)?))
            }
            None => rec::SinkMode::Mem(Vec::new()),
        };
        let mem_cap = if config.mem_cap == 0 {
            1 << 20
        } else {
            config.mem_cap
        };
        *rec::lock_sink() = Some(rec::SinkState {
            mode,
            records: 0,
            dropped: 0,
            io_errors: 0,
            mem_cap,
        });
        rec::SECTION.store(u32::MAX, Relaxed);
        rec::ROUND.store(0, Relaxed);
        rec::MAIN_SEQ.store(0, Relaxed);
        rec::ARMED.store(true, Relaxed);
    }
    #[cfg(not(feature = "trace"))]
    let _ = config;
    Ok(())
}

/// Disarms the recorder, appends per-op timing records (from the
/// telemetry totals) and a trailing [`Body::Summary`], flushes the spill
/// file, and returns the final accounting. Worker threads must have
/// joined (they flush their buffers on exit).
pub fn finish() -> TraceStats {
    #[cfg(feature = "trace")]
    {
        use std::io::Write as _;
        use std::sync::atomic::Ordering::Relaxed;
        if !rec::ARMED.swap(false, Relaxed) {
            return TraceStats::default();
        }
        rec::flush_tls();
        let snap = crate::snapshot();
        let mut guard = rec::lock_sink();
        let Some(state) = guard.as_mut() else {
            return TraceStats::default();
        };
        let mut end_sub = 0u64;
        for kind in crate::OpKind::ALL {
            let i = kind as usize;
            if snap.op_calls[i] != 0 {
                state.write(Record {
                    section: END_SECTION,
                    round: 0,
                    lane: 0,
                    image: 0,
                    sub: end_sub,
                    body: Body::Ops {
                        op: kind.name().to_owned(),
                        ns: snap.op_ns[i],
                        calls: snap.op_calls[i],
                    },
                });
                end_sub += 1;
            }
        }
        let summary = Body::Summary {
            records: state.records,
            dropped: state.dropped,
        };
        state.write(Record {
            section: END_SECTION,
            round: 0,
            lane: 0,
            image: 0,
            sub: end_sub,
            body: summary,
        });
        if let rec::SinkMode::File(out) = &mut state.mode {
            if out.flush().is_err() {
                state.io_errors += 1;
            }
        }
        state.stats()
    }
    #[cfg(not(feature = "trace"))]
    TraceStats::default()
}

/// Takes the in-memory record stream (for tests; empty when [`start`]
/// spilled to a file or was never called).
pub fn drain_records() -> Vec<Record> {
    #[cfg(feature = "trace")]
    {
        rec::flush_tls();
        let mut guard = rec::lock_sink();
        if let Some(state) = guard.as_mut() {
            if let rec::SinkMode::Mem(buf) = &mut state.mode {
                return std::mem::take(buf);
            }
        }
        Vec::new()
    }
    #[cfg(not(feature = "trace"))]
    Vec::new()
}

/// Merges the calling thread's buffered records into the global sink.
/// Called by parallel workers before their scope joins; long-lived
/// threads should call it before [`finish`] runs elsewhere.
#[inline]
pub fn flush() {
    // Flush even when disarmed mid-run so buffers never go stale.
    #[cfg(feature = "trace")]
    rec::flush_tls();
}

/// Starts a new section (on the coordinating thread): bumps the section
/// id, resets the round, and records the metadata.
pub fn begin_section(meta: SectionMeta) {
    if !armed() {
        return;
    }
    #[cfg(feature = "trace")]
    {
        use std::sync::atomic::Ordering::Relaxed;
        rec::SECTION.fetch_add(1, Relaxed); // u32::MAX wraps to 0 first.
        rec::ROUND.store(0, Relaxed);
        rec::push_meta(Body::Section {
            label: meta.label,
            scale: meta.scale,
            arch: meta.arch,
            set: meta.set,
            per_class: meta.per_class,
            set_seed: meta.set_seed,
            budget: meta.budget,
            attack: meta.attack,
            attack_seed: meta.attack_seed,
        });
    }
    #[cfg(not(feature = "trace"))]
    let _ = meta;
}

/// Narrows the current section's image set to one class (on the
/// coordinating thread).
pub fn begin_class(class: u32) {
    if !armed() {
        return;
    }
    #[cfg(feature = "trace")]
    rec::push_meta(Body::Class { class });
    #[cfg(not(feature = "trace"))]
    let _ = class;
}

/// Records a prefilter narrowing: subsequent sweeps index into `kept`
/// (on the coordinating thread).
pub fn record_filter(kept: &[usize]) {
    if !armed() {
        return;
    }
    #[cfg(feature = "trace")]
    rec::push_meta(Body::Filter {
        kept: kept.iter().map(|&k| k as u32).collect(),
    });
    #[cfg(not(feature = "trace"))]
    let _ = kept;
}

/// Starts an evaluation sweep (on the coordinating thread, before the
/// parallel region): bumps the round and records the sweep metadata.
pub fn begin_sweep(sweep: &str, n: usize, program: &str) {
    if !armed() {
        return;
    }
    #[cfg(feature = "trace")]
    {
        use std::sync::atomic::Ordering::Relaxed;
        rec::ROUND.fetch_add(1, Relaxed);
        rec::push_meta(Body::Sweep {
            sweep: sweep.to_owned(),
            n: n as u32,
            program: program.to_owned(),
        });
    }
    #[cfg(not(feature = "trace"))]
    let _ = (sweep, n, program);
}

/// Records one Metropolis–Hastings step (on the coordinating thread,
/// after the proposal's evaluation sweep).
pub fn record_synth(step: usize, program: &str, score: f64, accepted: bool) {
    if !armed() {
        return;
    }
    #[cfg(feature = "trace")]
    rec::push_meta(Body::Synth {
        step: step as u32,
        program: program.to_owned(),
        score,
        accepted,
    });
    #[cfg(not(feature = "trace"))]
    let _ = (step, program, score, accepted);
}

/// Binds the calling worker to image `image` of the current sweep and
/// resets its per-run record counter. Call at the top of each per-item
/// closure.
#[inline]
pub fn set_image(image: usize) {
    if !armed() {
        return;
    }
    #[cfg(feature = "trace")]
    rec::set_image(image as u32);
    #[cfg(not(feature = "trace"))]
    let _ = image;
}

/// Tags the in-flight query's oracle routing (clears any stale cache
/// tag). Called by `core::oracle` at the top of each counted query.
#[inline]
pub fn tag_route(route: RouteTag) {
    if !armed() {
        return;
    }
    #[cfg(feature = "trace")]
    rec::set_route(route as u8 + 1);
    #[cfg(not(feature = "trace"))]
    let _ = route;
}

/// Tags the in-flight query's delta-cache classification. Called by the
/// inference engine when a single-image incremental forward runs.
#[inline]
pub fn tag_cache(cache: CacheTag) {
    if !armed() {
        return;
    }
    #[cfg(feature = "trace")]
    rec::set_cache(cache as u8 + 1);
    #[cfg(not(feature = "trace"))]
    let _ = cache;
}

#[cfg(feature = "trace")]
fn route_name(tag: u8) -> &'static str {
    match tag {
        0 => "none",
        t => RouteTag::name(match t - 1 {
            0 => RouteTag::Full,
            1 => RouteTag::Delta,
            2 => RouteTag::BatchHit,
            3 => RouteTag::BatchMiss,
            _ => RouteTag::Batch,
        }),
    }
}

#[cfg(feature = "trace")]
fn cache_name(tag: u8) -> &'static str {
    match tag {
        0 => "none",
        1 => "hit",
        2 => "rebase",
        _ => "cold",
    }
}

/// Records one oracle query (on the worker that issued it), joining in
/// the pending route/cache tags.
#[inline]
pub fn record_query(info: QueryInfo) {
    if !armed() {
        return;
    }
    #[cfg(feature = "trace")]
    {
        let (route, cache) = rec::take_tags();
        let (row, col, rgb) = match info.pixel {
            Some((row, col, rgb)) => (row, col, rgb),
            None => (NO_PIXEL, NO_PIXEL, [0.0, 0.0, 0.0]),
        };
        rec::push_image_event(Body::Query {
            phase: info.phase.to_owned(),
            route: route_name(route).to_owned(),
            cache: cache_name(cache).to_owned(),
            seq: info.seq,
            row,
            col,
            r: rgb[0],
            g: rgb[1],
            b: rgb[2],
            margin: info.margin,
            pred: info.pred,
            flip: info.flip,
        });
    }
    #[cfg(not(feature = "trace"))]
    let _ = info;
}

/// Records a synthesized-condition firing (`b1`..`b4`) on the worker.
#[inline]
pub fn record_cond(cond: &'static str) {
    if !armed() {
        return;
    }
    #[cfg(feature = "trace")]
    rec::push_image_event(Body::Cond {
        cond: cond.to_owned(),
    });
    #[cfg(not(feature = "trace"))]
    let _ = cond;
}

/// Records a finished per-image attack run (on the worker).
#[inline]
pub fn record_run(queries: u64, success: bool) {
    if !armed() {
        return;
    }
    #[cfg(feature = "trace")]
    rec::push_image_event(Body::Run { queries, success });
    #[cfg(not(feature = "trace"))]
    let _ = (queries, success);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<Record> {
        vec![
            Record {
                section: 0,
                round: 0,
                lane: 0,
                image: 0,
                sub: 0,
                body: Body::Section {
                    label: "unit/\"quoted\"\nlabel".into(),
                    scale: "cifar".into(),
                    arch: "resnet20".into(),
                    set: "test".into(),
                    per_class: 2,
                    set_seed: 999,
                    budget: 4096,
                    attack: "oppsla".into(),
                    attack_seed: 0,
                },
            },
            Record {
                section: 0,
                round: 1,
                lane: 0,
                image: 0,
                sub: 1,
                body: Body::Sweep {
                    sweep: "attack_eval".into(),
                    n: 20,
                    program: "or(curr(), hist(1))".into(),
                },
            },
            Record {
                section: 0,
                round: 1,
                lane: 0,
                image: 0,
                sub: 2,
                body: Body::Filter {
                    kept: vec![0, 2, 5],
                },
            },
            Record {
                section: 0,
                round: 1,
                lane: 0,
                image: 0,
                sub: 3,
                body: Body::Class { class: 7 },
            },
            Record {
                section: 0,
                round: 1,
                lane: 1,
                image: 3,
                sub: 0,
                body: Body::Query {
                    phase: "init_scan".into(),
                    route: "batch_hit".into(),
                    cache: "none".into(),
                    seq: 17,
                    row: 5,
                    col: 30,
                    r: 0.100000024,
                    g: 1.0,
                    b: -0.0,
                    margin: -3.4028235e38,
                    pred: 4,
                    flip: true,
                },
            },
            Record {
                section: 0,
                round: 1,
                lane: 1,
                image: 3,
                sub: 1,
                body: Body::Cond { cond: "b3".into() },
            },
            Record {
                section: 0,
                round: 1,
                lane: 1,
                image: 3,
                sub: 2,
                body: Body::Run {
                    queries: 42,
                    success: true,
                },
            },
            Record {
                section: 0,
                round: 2,
                lane: 0,
                image: 0,
                sub: 4,
                body: Body::Synth {
                    step: 3,
                    program: "and(b1, not(b2))".into(),
                    score: 1234.5678901,
                    accepted: false,
                },
            },
            Record {
                section: END_SECTION,
                round: 0,
                lane: 0,
                image: 0,
                sub: 0,
                body: Body::Ops {
                    op: "conv2d".into(),
                    ns: 123456789,
                    calls: 42,
                },
            },
            Record {
                section: END_SECTION,
                round: 0,
                lane: 0,
                image: 0,
                sub: 1,
                body: Body::Summary {
                    records: 9,
                    dropped: 0,
                },
            },
        ]
    }

    #[test]
    fn records_round_trip_through_jsonl() {
        for rec in sample_records() {
            let line = rec.to_jsonl();
            let back = Record::parse(&line).unwrap_or_else(|e| panic!("{e}\nline: {line}"));
            assert_eq!(back, rec, "line: {line}");
            // Serialization is canonical: a second trip is byte-identical.
            assert_eq!(back.to_jsonl(), line);
        }
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for bits in [
            0u32,
            0x8000_0000, // -0.0
            0x3f80_0001, // nextafter(1.0)
            0x7f7f_ffff, // f32::MAX
            0x0000_0001, // smallest subnormal
            0x7f80_0000, // +inf
            std::f32::consts::PI.to_bits(),
        ] {
            let v = f32::from_bits(bits);
            let rec = Record {
                section: 0,
                round: 0,
                lane: 1,
                image: 0,
                sub: 0,
                body: Body::Query {
                    phase: "p".into(),
                    route: "full".into(),
                    cache: "none".into(),
                    seq: 1,
                    row: 0,
                    col: 0,
                    r: v,
                    g: -v,
                    b: 0.0,
                    margin: v,
                    pred: 0,
                    flip: false,
                },
            };
            let back = Record::parse(&rec.to_jsonl()).unwrap();
            if let Body::Query { r, g, margin, .. } = back.body {
                assert_eq!(r.to_bits(), v.to_bits());
                assert_eq!(g.to_bits(), (-v).to_bits());
                assert_eq!(margin.to_bits(), v.to_bits());
            } else {
                panic!("wrong kind");
            }
        }
    }

    #[test]
    fn canonical_sort_orders_meta_before_image_events() {
        let mut records = sample_records();
        // Shuffle deterministically by reversing.
        records.reverse();
        canonical_sort(&mut records);
        assert_eq!(records, sample_records());
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(Record::parse("").is_err());
        assert!(Record::parse("{").is_err());
        assert!(Record::parse(
            "{\"k\":\"nope\",\"sec\":0,\"rnd\":0,\"lane\":0,\"img\":0,\"sub\":0}"
        )
        .is_err());
        assert!(
            Record::parse("{\"k\":\"run\",\"sec\":0}").is_err(),
            "missing fields"
        );
        assert!(Record::parse("{\"k\":\"run\",\"sec\":0,\"rnd\":0,\"lane\":0,\"img\":0,\"sub\":0,\"queries\":\"x\",\"success\":true}").is_err());
    }

    #[test]
    fn flat_json_parser_handles_escapes_and_arrays() {
        let fields = parse_flat_json(
            "{\"a\":\"x\\n\\\"y\\\"\\u00e9\",\"b\":[1, 2 ,3],\"c\":true,\"d\":-1.5e3}",
        )
        .unwrap();
        assert_eq!(fields[0], ("a".into(), JsonScalar::Str("x\n\"y\"é".into())));
        assert_eq!(
            fields[1],
            (
                "b".into(),
                JsonScalar::Arr(vec!["1".into(), "2".into(), "3".into()])
            )
        );
        assert_eq!(fields[2], ("c".into(), JsonScalar::Bool(true)));
        assert_eq!(fields[3], ("d".into(), JsonScalar::Num("-1.5e3".into())));
        assert!(
            parse_flat_json("{\"a\":{}}").is_err(),
            "nested objects rejected"
        );
    }

    #[cfg(not(feature = "trace"))]
    #[test]
    fn disabled_build_is_inert() {
        assert!(!enabled());
        start(TraceConfig::default()).unwrap();
        assert!(!armed());
        begin_section(SectionMeta::default());
        begin_sweep("eval", 3, "");
        set_image(0);
        tag_route(RouteTag::Full);
        record_query(QueryInfo {
            phase: "baseline",
            seq: 1,
            pixel: None,
            margin: 0.5,
            pred: 0,
            flip: false,
        });
        record_run(1, false);
        assert_eq!(finish(), TraceStats::default());
        assert!(drain_records().is_empty());
    }

    #[cfg(feature = "trace")]
    mod armed {
        use super::super::*;
        use std::sync::{Mutex, OnceLock};

        /// The recorder is process-global; serialize tests that arm it.
        fn lock() -> std::sync::MutexGuard<'static, ()> {
            static GATE: OnceLock<Mutex<()>> = OnceLock::new();
            GATE.get_or_init(|| Mutex::new(()))
                .lock()
                .unwrap_or_else(|e| e.into_inner())
        }

        fn record_one_run(image: usize, queries: u64) {
            set_image(image);
            for seq in 1..=queries {
                tag_route(RouteTag::Delta);
                tag_cache(CacheTag::Hit);
                record_query(QueryInfo {
                    phase: "init_scan",
                    seq,
                    pixel: Some((1, 2, [0.0, 0.5, 1.0])),
                    margin: 0.25,
                    pred: 3,
                    flip: false,
                });
            }
            record_run(queries, false);
        }

        #[test]
        fn in_memory_trace_is_recorded_and_addressed() {
            let _g = lock();
            start(TraceConfig::default()).unwrap();
            assert!(armed());
            begin_section(SectionMeta {
                label: "unit".into(),
                attack: "test".into(),
                ..SectionMeta::default()
            });
            begin_sweep("attack_eval", 2, "");
            record_one_run(0, 2);
            record_one_run(1, 1);
            let stats = finish();
            assert!(!armed());
            let mut records = drain_records();
            canonical_sort(&mut records);
            assert_eq!(stats.records, records.len() as u64);
            assert_eq!(stats.dropped, 0);
            assert_eq!(records[0].kind(), "section");
            assert_eq!(records[0].section, 0);
            assert_eq!(records[1].kind(), "sweep");
            assert_eq!(records[1].round, 1);
            let queries: Vec<&Record> = records.iter().filter(|r| r.kind() == "query").collect();
            assert_eq!(queries.len(), 3);
            assert_eq!(queries[0].image, 0);
            assert_eq!(queries[2].image, 1);
            if let Body::Query { route, cache, .. } = &queries[0].body {
                assert_eq!(route, "delta");
                assert_eq!(cache, "hit");
            } else {
                unreachable!();
            }
            let runs = records.iter().filter(|r| r.kind() == "run").count();
            assert_eq!(runs, 2);
        }

        #[test]
        fn worker_threads_merge_deterministically() {
            let _g = lock();
            // Two runs: 1 worker thread, then 4. Canonical-sorted streams
            // must be byte-identical.
            let mut streams = Vec::new();
            for threads in [1usize, 4] {
                start(TraceConfig::default()).unwrap();
                begin_section(SectionMeta {
                    label: "par".into(),
                    ..SectionMeta::default()
                });
                begin_sweep("attack_eval", 8, "");
                std::thread::scope(|scope| {
                    for worker in 0..threads {
                        scope.spawn(move || {
                            let mut image = worker;
                            while image < 8 {
                                record_one_run(image, (image as u64 % 3) + 1);
                                image += threads;
                            }
                            flush();
                        });
                    }
                });
                finish();
                let mut records = drain_records();
                canonical_sort(&mut records);
                let text: String = records.iter().map(|r| r.to_jsonl() + "\n").collect();
                streams.push(text);
            }
            assert_eq!(streams[0], streams[1], "threads 1 vs 4");
        }

        #[test]
        fn mem_cap_drops_are_counted() {
            let _g = lock();
            start(TraceConfig {
                path: None,
                mem_cap: 4,
            })
            .unwrap();
            begin_section(SectionMeta::default());
            begin_sweep("attack_eval", 1, "");
            record_one_run(0, 10);
            let stats = finish();
            assert_eq!(stats.records, 4);
            assert!(stats.dropped > 0);
            drain_records();
        }

        #[test]
        fn file_sink_spills_parseable_jsonl() {
            let _g = lock();
            let path = std::env::temp_dir()
                .join(format!("oppsla-trace-test-{}.jsonl", std::process::id()));
            start(TraceConfig {
                path: Some(path.clone()),
                mem_cap: 0,
            })
            .unwrap();
            begin_section(SectionMeta {
                label: "spill".into(),
                ..SectionMeta::default()
            });
            begin_sweep("attack_eval", 1, "");
            record_one_run(0, 3);
            let stats = finish();
            assert_eq!(stats.io_errors, 0);
            let text = std::fs::read_to_string(&path).unwrap();
            let records: Vec<Record> = text.lines().map(|l| Record::parse(l).unwrap()).collect();
            // section + sweep + 3 queries + run + summary (no ops unless
            // another test timed ops in this process — tolerate those).
            assert!(records.len() as u64 >= stats.records);
            assert!(records.iter().any(|r| r.kind() == "summary"));
            assert_eq!(records.iter().filter(|r| r.kind() == "query").count(), 3);
            let _ = std::fs::remove_file(&path);
        }

        #[test]
        fn disarmed_hooks_record_nothing() {
            let _g = lock();
            // Fully drain any prior state, then call hooks while disarmed.
            finish();
            drain_records();
            assert!(!armed());
            set_image(5);
            tag_route(RouteTag::Full);
            record_query(QueryInfo {
                phase: "baseline",
                seq: 1,
                pixel: None,
                margin: 1.0,
                pred: 0,
                flip: false,
            });
            record_run(1, false);
            start(TraceConfig::default()).unwrap();
            let before = drain_records();
            assert!(before.is_empty(), "{before:?}");
            finish();
            drain_records();
        }
    }
}
