//! Property and concurrency tests of the live metrics registry.
//!
//! Two claims the server's observability plane leans on:
//!  1. partition — the histogram's log2 bucket bounds tile the whole
//!     `u64` range with no gaps or overlaps, and `hist_bucket` agrees
//!     with the bounds for every value (property-tested over arbitrary
//!     u64s, not just the powers of two the unit tests pin);
//!  2. exact accounting under contention — N threads hammering one
//!     counter and one histogram concurrently lose nothing: the totals
//!     are exactly N x M, so a /metrics scrape can be cross-checked
//!     against ground-truth job counts to the last query.

use oppsla_obs::metrics::{hist_bounds, hist_bucket, Registry, HIST_BUCKETS};
use proptest::prelude::*;

proptest! {
    /// Every value lands in exactly one bucket, and that bucket's bounds
    /// contain it. Uniform u64s cluster in the top few buckets, so the
    /// raw draw is right-shifted by an arbitrary amount to spread the
    /// tested magnitudes across all 65 buckets.
    #[test]
    fn every_u64_lands_in_exactly_one_bucket(raw in any::<u64>(), shift in 0usize..=64) {
        let v = if shift == 64 { 0 } else { raw >> shift };
        let b = hist_bucket(v);
        prop_assert!(b < HIST_BUCKETS);
        let (lo, hi) = hist_bounds(b);
        prop_assert!(v >= lo, "{v} below bucket {b} lower bound {lo}");
        if hi == u64::MAX {
            // The top bucket is closed: it includes u64::MAX itself.
            prop_assert!(v >= 1 << 63);
        } else {
            prop_assert!(v < hi, "{v} at or above bucket {b} upper bound {hi}");
        }
        // No other bucket's bounds contain v.
        for other in 0..HIST_BUCKETS {
            if other == b {
                continue;
            }
            let (olo, ohi) = hist_bounds(other);
            let contains = if ohi == u64::MAX {
                v >= olo
            } else {
                v >= olo && v < ohi
            };
            prop_assert!(!contains, "{v} also inside bucket {other}");
        }
    }

    /// Adjacent buckets share a boundary: bucket b's upper bound is
    /// bucket b+1's lower bound, for every pair, so the partition has
    /// no gaps.
    #[test]
    fn adjacent_bounds_tile(b in 0usize..HIST_BUCKETS - 1) {
        prop_assert_eq!(hist_bounds(b).1, hist_bounds(b + 1).0);
    }
}

#[test]
fn partition_starts_at_zero_and_ends_at_max() {
    assert_eq!(hist_bounds(0).0, 0);
    assert_eq!(hist_bounds(HIST_BUCKETS - 1).1, u64::MAX);
    assert_eq!(hist_bucket(0), 0);
    assert_eq!(hist_bucket(u64::MAX), HIST_BUCKETS - 1);
}

#[test]
fn concurrent_increments_sum_exactly() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 20_000;
    let registry = std::sync::Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let registry = std::sync::Arc::clone(&registry);
            std::thread::spawn(move || {
                // Every thread registers by name — all must share cells.
                let counter = registry.counter("queries_total", &[]);
                let gauge = registry.gauge("in_flight", &[]);
                let hist = registry.histogram("latency_us", &[]);
                for i in 0..PER_THREAD {
                    gauge.inc();
                    counter.inc();
                    hist.observe(t * PER_THREAD + i);
                    gauge.dec();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let counter = registry.counter("queries_total", &[]);
    let gauge = registry.gauge("in_flight", &[]);
    let hist = registry.histogram("latency_us", &[]);
    assert_eq!(counter.get(), THREADS * PER_THREAD, "no lost increments");
    assert_eq!(gauge.get(), 0, "gauge returns to zero after drain");
    assert_eq!(hist.count(), THREADS * PER_THREAD);
    // Sum of 0..THREADS*PER_THREAD observed exactly once each.
    let n = THREADS * PER_THREAD;
    assert_eq!(hist.sum(), n * (n - 1) / 2);
    let total: u64 = hist.bucket_counts().iter().sum();
    assert_eq!(total, n, "every observation landed in exactly one bucket");
}
