//! The attack daemon.
//!
//! Binds a TCP address and serves attack jobs until a client sends a
//! `Shutdown` frame (see `oppsla_server::protocol` for the wire format).
//!
//! ```text
//! oppsla_serverd [--addr 127.0.0.1:7431] [--workers 2] [--max-merge 8]
//!                [--max-active 16] [--max-waiting 64]
//!                [--train-per-class 64] [--epochs N] [--test-per-class 4]
//!                [--cache-dir PATH] [--seed 1] [--memo]
//!                [--metrics-addr 127.0.0.1:9431] [--no-metrics]
//! ```
//!
//! `--memo` shares a cross-tenant query memo per model shard (build with
//! `--features query-memo`). Leave it off for determinism-witness
//! deployments: a shared memo makes each job's query count and log
//! digest depend on other tenants' history.
//!
//! The live metrics plane is on by default (it is passive and never
//! changes job outcomes); `--metrics-addr` additionally serves the
//! plaintext Prometheus-style `/metrics` page, and the `Stats` frame
//! (see `server_top`) works either way. On shutdown the daemon flushes a
//! final metrics snapshot to stderr, so a scripted run keeps the closing
//! counters even if nothing scraped them.

use oppsla_server::cli::Args;
use oppsla_server::scheduler::SchedulerConfig;
use oppsla_server::server::{Server, ServerConfig};

fn main() {
    let args = Args::parse();
    let mut zoo = oppsla_eval::zoo::ZooConfig {
        train_per_class: args.get_usize("train-per-class", 64),
        seed: args.get_u64("seed", 1),
        cache_dir: args.get_opt_str("cache-dir").map(std::path::PathBuf::from),
        ..Default::default()
    };
    if let Some(epochs) = args.get_opt_str("epochs") {
        zoo.epochs = Some(
            epochs
                .parse()
                .unwrap_or_else(|_| panic!("--epochs expects an integer, got {epochs:?}")),
        );
    }
    let cfg = ServerConfig {
        addr: args.get_str("addr", "127.0.0.1:7431"),
        scheduler: SchedulerConfig {
            workers: args.get_usize("workers", 2),
            max_merge: args.get_usize("max-merge", 8),
            coalesce: std::time::Duration::from_micros(args.get_u64("coalesce-us", 200)),
        },
        zoo,
        test_per_class: args.get_usize("test-per-class", 4),
        test_seed: args.get_u64("test-seed", 9),
        max_active_jobs: args.get_usize("max-active", 16),
        max_waiting_jobs: args.get_usize("max-waiting", 64),
        memo: args.flag("memo"),
        metrics: !args.flag("no-metrics"),
        metrics_addr: args.get_opt_str("metrics-addr").map(str::to_owned),
    };
    if args.flag("no-metrics") && args.get_opt_str("metrics-addr").is_some() {
        eprintln!("oppsla_serverd: --no-metrics disables the /metrics listener too");
    }
    if args.flag("memo") && cfg!(not(feature = "query-memo")) {
        eprintln!("oppsla_serverd: built without --features query-memo; --memo is inert");
    }
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("oppsla_serverd: cannot bind: {e}");
            std::process::exit(1);
        }
    };
    // The one stdout line scripts wait for before connecting.
    println!("oppsla_serverd listening on {}", server.local_addr());
    if let Some(addr) = server.metrics_addr() {
        println!("oppsla_serverd metrics on http://{addr}/metrics");
    }
    let metrics = server.metrics();
    server.wait();
    // Final snapshot on the shutdown handshake path: the counters are
    // settled (accept loop joined, connections drained, scheduler
    // stopped), so this is the authoritative end-of-run accounting.
    if let Some(m) = metrics {
        let report = m.snapshot();
        eprintln!(
            "oppsla_serverd: final metrics snapshot ({} series):",
            report.metrics.len()
        );
        for s in &report.metrics {
            eprintln!("  {} {}", s.key, s.value);
        }
        for j in &report.slow_jobs {
            eprintln!(
                "  slow_job tenant={} shard={}/{} status={} queries={} wall_us={}",
                j.tenant, j.arch, j.scale, j.status, j.queries, j.wall_us
            );
        }
    }
    eprintln!("oppsla_serverd: drained, exiting");
}
