//! Multi-tenant load test: boots an in-process daemon, replays synthetic
//! attack traffic against it over real sockets, and emits the
//! `BENCH_server.json` report CI gates with `scripts/bench_gate.sh`.
//!
//! Every job is first run through a *single* isolated session in-process
//! (the machine-independent baseline), then through the daemon under
//! `--tenants` concurrent connections. The report's `server_speedup` is
//! aggregate candidates/sec over the baseline's — the ratio the gate
//! compares, since absolute ns depend on the machine. The run also
//! *asserts determinism*: each job's query-log digest over the shared
//! scheduler must equal its isolated baseline digest, or the process
//! exits nonzero.
//!
//! ```text
//! server_loadtest [--tenants 8] [--workers 2] [--max-merge 8]
//!                 [--jobs-per-tenant 2] [--budget 400]
//!                 [--archs mlp,vgg-small] [--scale shapes32]
//!                 [--train-per-class 8] [--epochs 2] [--test-per-class 4]
//!                 [--trace SAMPLE_trace.jsonl] [--out BENCH_server.json]
//! ```

use oppsla_attacks::{Attack, SketchProgramAttack};
use oppsla_core::dsl::Program;
use oppsla_core::oracle::{BatchClassifier, Oracle};
use oppsla_server::cli::Args;
use oppsla_server::protocol::{
    read_frame, write_frame, ImageSpec, JobOutcome, JobRequest, Request, Response,
};
use oppsla_server::scheduler::SchedulerConfig;
use oppsla_server::server::{Server, ServerConfig};
use oppsla_server::session::digest_query_log;
use oppsla_server::zoo::ModelShard;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// One `"k":"run"` record of a recorded attack trace (PR 5 format); the
/// load test replays the image sequence as synthetic traffic.
#[derive(Debug, serde::Deserialize)]
#[allow(dead_code)]
struct TraceRun {
    k: String,
    sec: u64,
    rnd: u64,
    lane: u64,
    img: u64,
    sub: u64,
    queries: u64,
    success: bool,
}

/// Image indices replayed from a trace file's run records, or `None`
/// when the file has none / was not given.
fn trace_images(path: Option<&str>) -> Option<Vec<u64>> {
    let path = path?;
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("server_loadtest: cannot read trace {path}: {e}; using round-robin images");
            return None;
        }
    };
    let images: Vec<u64> = text
        .lines()
        .filter(|l| l.contains("\"k\":\"run\""))
        .filter_map(|l| serde_json::from_str::<TraceRun>(l).ok())
        .map(|r| r.img)
        .collect();
    if images.is_empty() {
        eprintln!("server_loadtest: no run records in {path}; using round-robin images");
        None
    } else {
        Some(images)
    }
}

/// The isolated single-session reference: same job, no scheduler, no
/// sockets. Returns (queries, query-log digest hex).
fn run_baseline(shard: &ModelShard, job: &JobRequest) -> (u64, String) {
    let index = job
        .image
        .test_index
        .expect("loadtest jobs index the test set") as usize;
    let (image, true_class) = shard.test_set[index].clone();
    let session = shard.classifier.session();
    let mut oracle = Oracle::with_budget(&*session, job.budget);
    oracle.enable_query_log();
    let attack = SketchProgramAttack::new(Program::paper_example());
    let mut rng = ChaCha8Rng::seed_from_u64(job.seed);
    let outcome = attack.attack(&mut oracle, &image, true_class, &mut rng);
    let digest = digest_query_log(&oracle.take_query_log());
    (outcome.queries(), format!("{digest:016x}"))
}

/// Submits one job over an open connection, returning the outcome and
/// the request round-trip latency in seconds.
fn submit(stream: &mut TcpStream, job: &JobRequest) -> (JobOutcome, f64) {
    let json = serde_json::to_string(&Request::Attack(job.clone())).expect("serialize request");
    let t0 = Instant::now();
    write_frame(stream, &json).expect("send job");
    let reply = read_frame(stream)
        .expect("read response")
        .expect("server closed mid-request");
    let latency = t0.elapsed().as_secs_f64();
    match serde_json::from_str::<Response>(&reply).expect("parse response") {
        Response::Done(outcome) => (outcome, latency),
        other => panic!("job rejected: {other:?}"),
    }
}

fn percentile_ms(sorted: &[f64], pct: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * pct).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx] * 1e3
}

struct ArchRow {
    arch: String,
    input: String,
    jobs: usize,
    total_queries: u64,
    baseline_cps: f64,
    aggregate_cps: f64,
    p50_ms: f64,
    p99_ms: f64,
    speedup: f64,
}

fn main() {
    let args = Args::parse();
    let tenants = args.get_usize("tenants", 8).max(1);
    let workers = args.get_usize("workers", 2);
    let max_merge = args.get_usize("max-merge", 8);
    let jobs_per_tenant = args.get_usize("jobs-per-tenant", 2).max(1);
    let budget = args.get_u64("budget", 400);
    let archs = args.get_str("archs", "mlp,vgg-small");
    let scale_id = args.get_str("scale", "shapes32");
    let out_path = args.get_str("out", "BENCH_server.json");
    let trace = trace_images(args.get_opt_str("trace"));

    let mut zoo_cfg = oppsla_eval::zoo::ZooConfig {
        train_per_class: args.get_usize("train-per-class", 8),
        epochs: Some(args.get_usize("epochs", 2)),
        learning_rate: 2e-3,
        seed: args.get_u64("seed", 1),
        cache_dir: args.get_opt_str("cache-dir").map(std::path::PathBuf::from),
    };
    if args.get_usize("epochs", 2) == 0 {
        zoo_cfg.epochs = None;
    }

    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        scheduler: SchedulerConfig {
            workers,
            max_merge,
            coalesce: std::time::Duration::from_micros(args.get_u64("coalesce-us", 200)),
        },
        zoo: zoo_cfg,
        test_per_class: args.get_usize("test-per-class", 4),
        test_seed: args.get_u64("test-seed", 9),
        max_active_jobs: tenants.max(16),
        max_waiting_jobs: 4 * tenants.max(16),
        memo: false,
    })
    .expect("bind loopback");
    let addr = server.local_addr();
    let zoo = server.zoo();
    let scale = oppsla_server::protocol::parse_scale(&scale_id).expect("--scale");

    let mut rows: Vec<ArchRow> = Vec::new();
    let mut determinism_ok = true;

    for arch_id in archs.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let arch = oppsla_server::protocol::parse_arch(arch_id).expect("--archs");
        let shard = zoo.shard(arch, scale); // train before timing anything
        let spec = scale.input_spec();
        let input = format!("{}x{}x{}", spec.channels, spec.height, spec.width);

        // Job list: tenants × jobs_per_tenant, images replayed from the
        // trace when given, round-robin over the test set otherwise.
        let total_jobs = tenants * jobs_per_tenant;
        let jobs: Vec<JobRequest> = (0..total_jobs)
            .map(|j| {
                let img = match &trace {
                    Some(images) => images[j % images.len()],
                    None => j as u64,
                } % shard.test_set.len() as u64;
                JobRequest {
                    arch: arch_id.to_owned(),
                    scale: scale_id.clone(),
                    image: ImageSpec {
                        test_index: Some(img),
                        inline: None,
                    },
                    budget,
                    program: None,
                    seed: 1000 + j as u64,
                }
            })
            .collect();

        // Phase 1: isolated single-session baseline, sequential.
        let t0 = Instant::now();
        let baselines: Vec<(u64, String)> = jobs.iter().map(|j| run_baseline(&shard, j)).collect();
        let baseline_secs = t0.elapsed().as_secs_f64();
        let total_queries: u64 = baselines.iter().map(|(q, _)| q).sum();
        let baseline_cps = total_queries as f64 / baseline_secs.max(1e-9);

        // Phase 2: the same jobs through the daemon, `tenants`
        // concurrent connections.
        let jobs = Arc::new(jobs);
        let barrier = Arc::new(Barrier::new(tenants + 1));
        let handles: Vec<_> = (0..tenants)
            .map(|t| {
                let jobs = Arc::clone(&jobs);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    stream.set_nodelay(true).ok();
                    barrier.wait();
                    let mut results = Vec::new();
                    for j in (t..jobs.len()).step_by(tenants) {
                        let (outcome, latency) = submit(&mut stream, &jobs[j]);
                        results.push((j, outcome, latency));
                    }
                    results
                })
            })
            .collect();
        barrier.wait();
        let t0 = Instant::now();
        let mut results: Vec<(usize, JobOutcome, f64)> = Vec::new();
        for h in handles {
            results.extend(h.join().expect("tenant thread"));
        }
        let server_secs = t0.elapsed().as_secs_f64();
        let served_queries: u64 = results.iter().map(|(_, o, _)| o.queries).sum();
        let aggregate_cps = served_queries as f64 / server_secs.max(1e-9);

        // Determinism gate: the shared scheduler must reproduce every
        // isolated baseline byte-for-byte (queries and log digest).
        for (j, outcome, _) in &results {
            let (want_queries, want_digest) = &baselines[*j];
            if outcome.queries != *want_queries || outcome.log_fnv != *want_digest {
                determinism_ok = false;
                eprintln!(
                    "DETERMINISM FAIL: {arch_id} job {j}: served {} queries (digest {}) \
                     vs isolated {} ({})",
                    outcome.queries, outcome.log_fnv, want_queries, want_digest
                );
            }
        }

        let mut latencies: Vec<f64> = results.iter().map(|(_, _, l)| *l).collect();
        latencies.sort_by(f64::total_cmp);
        let row = ArchRow {
            arch: arch_id.to_owned(),
            input,
            jobs: total_jobs,
            total_queries: served_queries,
            baseline_cps,
            aggregate_cps,
            p50_ms: percentile_ms(&latencies, 0.50),
            p99_ms: percentile_ms(&latencies, 0.99),
            speedup: aggregate_cps / baseline_cps.max(1e-9),
        };
        eprintln!(
            "{}: {} jobs, {} queries, baseline {:.0} cand/s, server {:.0} cand/s \
             (x{:.2}), p50 {:.1} ms, p99 {:.1} ms",
            row.arch,
            row.jobs,
            row.total_queries,
            row.baseline_cps,
            row.aggregate_cps,
            row.speedup,
            row.p50_ms,
            row.p99_ms
        );
        rows.push(row);
    }

    // One row per line, like the other BENCH_*.json reports, so
    // bench_gate.sh's line-oriented parser picks up `server_speedup`.
    let mut report = String::new();
    report.push_str("{\n");
    report.push_str("  \"benchmark\": \"attack_server\",\n");
    report.push_str(&format!("  \"tenants\": {tenants},\n"));
    report.push_str(&format!("  \"workers\": {workers},\n"));
    report.push_str(&format!("  \"max_merge\": {max_merge},\n"));
    report.push_str(&format!("  \"jobs_per_tenant\": {jobs_per_tenant},\n"));
    report.push_str(&format!("  \"budget\": {budget},\n"));
    report.push_str(&format!(
        "  \"determinism\": \"{}\",\n",
        if determinism_ok { "ok" } else { "FAILED" }
    ));
    // Headline serving-capacity figure: the best per-arch aggregate the
    // scheduler sustained in this run (compare against the batched
    // inference bench's candidates/sec geomean).
    let peak = rows.iter().map(|r| r.aggregate_cps).fold(0.0, f64::max);
    report.push_str(&format!(
        "  \"peak_aggregate_candidates_per_sec\": {peak:.1},\n"
    ));
    report.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        report.push_str(&format!(
            "    {{\"arch\": \"{}\", \"input\": \"{}\", \"jobs\": {}, \"total_queries\": {}, \
             \"baseline_candidates_per_sec\": {:.1}, \"aggregate_candidates_per_sec\": {:.1}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"server_speedup\": {:.3}}}{}\n",
            r.arch,
            r.input,
            r.jobs,
            r.total_queries,
            r.baseline_cps,
            r.aggregate_cps,
            r.p50_ms,
            r.p99_ms,
            r.speedup,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    report.push_str("  ]\n}\n");
    let mut file = std::fs::File::create(&out_path).expect("create report");
    file.write_all(report.as_bytes()).expect("write report");
    eprintln!("server_loadtest: report written to {out_path}");

    server.request_shutdown();
    drop(server);
    #[cfg(feature = "telemetry")]
    {
        let snap = oppsla_core::telemetry::snapshot();
        eprintln!("server_loadtest telemetry: {}", snap.summary());
        eprintln!(
            "server_loadtest scheduler: {} grouped calls, {} submissions merged",
            snap.get(oppsla_core::telemetry::Counter::SchedGroupedCalls),
            snap.get(oppsla_core::telemetry::Counter::SchedGroupedSubmissions),
        );
    }
    if !determinism_ok {
        eprintln!("server_loadtest: determinism check FAILED");
        std::process::exit(1);
    }
}
