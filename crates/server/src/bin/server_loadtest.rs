//! Multi-tenant load test: boots an in-process daemon, replays synthetic
//! attack traffic against it over real sockets, and emits the
//! `BENCH_server.json` report CI gates with `scripts/bench_gate.sh`.
//!
//! Every job is first run through a *single* isolated session in-process
//! (the machine-independent baseline), then through the daemon under
//! `--tenants` concurrent connections. The report's `server_speedup` is
//! aggregate candidates/sec over the baseline's — the ratio the gate
//! compares, since absolute ns depend on the machine. The run also
//! *asserts determinism*: each job's query-log digest over the shared
//! scheduler must equal its isolated baseline digest, or the process
//! exits nonzero.
//!
//! ```text
//! server_loadtest [--tenants 8] [--workers 2] [--max-merge 8]
//!                 [--jobs-per-tenant 2] [--budget 400]
//!                 [--archs mlp,vgg-small] [--scale shapes32]
//!                 [--train-per-class 8] [--epochs 2] [--test-per-class 4]
//!                 [--trace SAMPLE_trace.jsonl] [--out BENCH_server.json]
//!                 [--repeat 1] [--no-metrics]
//! ```
//!
//! `--repeat N` measures each phase N times and reports the best
//! throughput of each (the standard best-of-N bench discipline: the
//! max is far less noisy than a single draw, which matters for the
//! tight 5% metrics-overhead gate). Every repeat must reproduce the
//! same job digests — repeats strengthen the determinism check, they
//! never average over nondeterminism.
//!
//! With metrics on (the default) the run finishes by scraping the
//! daemon's own `/metrics` page and cross-checking the scraped
//! `queries_total` / `jobs_done` against the ground-truth counts the
//! harness tallied from job outcomes — any drift exits nonzero. The
//! report's `jobs_fnv` digests every job's `log_fnv` in job order, so
//! two runs (e.g. metrics-on vs metrics-off in CI) can be compared for
//! byte-identical oracle behaviour with a one-line diff.

use oppsla_attacks::{Attack, SketchProgramAttack};
use oppsla_core::dsl::Program;
use oppsla_core::oracle::{BatchClassifier, Oracle};
use oppsla_server::cli::Args;
use oppsla_server::protocol::{
    read_frame, write_frame, ImageSpec, JobOutcome, JobRequest, Request, Response,
};
use oppsla_server::scheduler::SchedulerConfig;
use oppsla_server::server::{Server, ServerConfig};
use oppsla_server::session::digest_query_log;
use oppsla_server::zoo::ModelShard;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// One `"k":"run"` record of a recorded attack trace (PR 5 format); the
/// load test replays the image sequence as synthetic traffic.
#[derive(Debug, serde::Deserialize)]
#[allow(dead_code)]
struct TraceRun {
    k: String,
    sec: u64,
    rnd: u64,
    lane: u64,
    img: u64,
    sub: u64,
    queries: u64,
    success: bool,
}

/// Image indices replayed from a trace file's run records, or `None`
/// when the file has none / was not given.
fn trace_images(path: Option<&str>) -> Option<Vec<u64>> {
    let path = path?;
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("server_loadtest: cannot read trace {path}: {e}; using round-robin images");
            return None;
        }
    };
    let images: Vec<u64> = text
        .lines()
        .filter(|l| l.contains("\"k\":\"run\""))
        .filter_map(|l| serde_json::from_str::<TraceRun>(l).ok())
        .map(|r| r.img)
        .collect();
    if images.is_empty() {
        eprintln!("server_loadtest: no run records in {path}; using round-robin images");
        None
    } else {
        Some(images)
    }
}

/// The isolated single-session reference: same job, no scheduler, no
/// sockets. Returns (queries, query-log digest hex).
fn run_baseline(shard: &ModelShard, job: &JobRequest) -> (u64, String) {
    let index = job
        .image
        .test_index
        .expect("loadtest jobs index the test set") as usize;
    let (image, true_class) = shard.test_set[index].clone();
    let session = shard.classifier.session();
    let mut oracle = Oracle::with_budget(&*session, job.budget);
    oracle.enable_query_log();
    let attack = SketchProgramAttack::new(Program::paper_example());
    let mut rng = ChaCha8Rng::seed_from_u64(job.seed);
    let outcome = attack.attack(&mut oracle, &image, true_class, &mut rng);
    let digest = digest_query_log(&oracle.take_query_log());
    (outcome.queries(), format!("{digest:016x}"))
}

/// Submits one job over an open connection, returning the outcome and
/// the request round-trip latency in seconds.
fn submit(stream: &mut TcpStream, job: &JobRequest) -> (JobOutcome, f64) {
    let json = serde_json::to_string(&Request::Attack(job.clone())).expect("serialize request");
    let t0 = Instant::now();
    write_frame(stream, &json).expect("send job");
    let reply = read_frame(stream)
        .expect("read response")
        .expect("server closed mid-request");
    let latency = t0.elapsed().as_secs_f64();
    match serde_json::from_str::<Response>(&reply).expect("parse response") {
        Response::Done(outcome) => (outcome, latency),
        other => panic!("job rejected: {other:?}"),
    }
}

fn percentile_ms(sorted: &[f64], pct: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * pct).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx] * 1e3
}

/// FNV-1a 64 over `bytes`, continuing from `h` (seed with
/// [`FNV_OFFSET`]).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
fn fnv_mix(mut h: u64, bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x100_0000_01b3;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// One HTTP GET against the in-process daemon's `/metrics` listener;
/// returns the body.
fn scrape_metrics(addr: std::net::SocketAddr) -> String {
    use std::io::Read as _;
    let mut stream = TcpStream::connect(addr).expect("connect /metrics");
    write!(stream, "GET /metrics HTTP/1.1\r\nHost: loadtest\r\n\r\n").expect("send scrape");
    let mut page = String::new();
    stream.read_to_string(&mut page).expect("read scrape");
    let body_at = page.find("\r\n\r\n").expect("HTTP header terminator") + 4;
    page.split_off(body_at)
}

/// The value of an unlabelled counter/gauge on a `/metrics` page.
fn scraped_value(page: &str, name: &str) -> u64 {
    page.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("{name} missing from /metrics page:\n{page}"))
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("{name} is not an integer on the /metrics page"))
}

struct TenantLatency {
    tenant: usize,
    p50_ms: f64,
    p99_ms: f64,
}

struct ArchRow {
    arch: String,
    input: String,
    jobs: usize,
    total_queries: u64,
    baseline_cps: f64,
    aggregate_cps: f64,
    p50_ms: f64,
    p99_ms: f64,
    speedup: f64,
    tenant_latency: Vec<TenantLatency>,
}

fn main() {
    let args = Args::parse();
    let tenants = args.get_usize("tenants", 8).max(1);
    let workers = args.get_usize("workers", 2);
    let max_merge = args.get_usize("max-merge", 8);
    let jobs_per_tenant = args.get_usize("jobs-per-tenant", 2).max(1);
    let budget = args.get_u64("budget", 400);
    let archs = args.get_str("archs", "mlp,vgg-small");
    let scale_id = args.get_str("scale", "shapes32");
    let out_path = args.get_str("out", "BENCH_server.json");
    let trace = trace_images(args.get_opt_str("trace"));
    let metrics_on = !args.flag("no-metrics");
    let repeat = args.get_usize("repeat", 1).max(1);

    let mut zoo_cfg = oppsla_eval::zoo::ZooConfig {
        train_per_class: args.get_usize("train-per-class", 8),
        epochs: Some(args.get_usize("epochs", 2)),
        learning_rate: 2e-3,
        seed: args.get_u64("seed", 1),
        cache_dir: args.get_opt_str("cache-dir").map(std::path::PathBuf::from),
    };
    if args.get_usize("epochs", 2) == 0 {
        zoo_cfg.epochs = None;
    }

    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        scheduler: SchedulerConfig {
            workers,
            max_merge,
            coalesce: std::time::Duration::from_micros(args.get_u64("coalesce-us", 200)),
        },
        zoo: zoo_cfg,
        test_per_class: args.get_usize("test-per-class", 4),
        test_seed: args.get_u64("test-seed", 9),
        max_active_jobs: tenants.max(16),
        max_waiting_jobs: 4 * tenants.max(16),
        memo: false,
        metrics: metrics_on,
        metrics_addr: metrics_on.then(|| "127.0.0.1:0".into()),
    })
    .expect("bind loopback");
    let addr = server.local_addr();
    let zoo = server.zoo();
    let scale = oppsla_server::protocol::parse_scale(&scale_id).expect("--scale");

    let mut rows: Vec<ArchRow> = Vec::new();
    let mut determinism_ok = true;
    // Rolling digest over every served job's `log_fnv`, in job order:
    // the one-line witness the CI metrics A/B leg diffs.
    let mut jobs_fnv = FNV_OFFSET;
    // Ground truth for the /metrics cross-check: every job the daemon
    // actually served, across all repeats (the daemon's counters do not
    // know which repeat was the fastest).
    let mut ground_jobs: u64 = 0;
    let mut ground_queries: u64 = 0;

    for arch_id in archs.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let arch = oppsla_server::protocol::parse_arch(arch_id).expect("--archs");
        let shard = zoo.shard(arch, scale); // train before timing anything
        let spec = scale.input_spec();
        let input = format!("{}x{}x{}", spec.channels, spec.height, spec.width);

        // Job list: tenants × jobs_per_tenant, images replayed from the
        // trace when given, round-robin over the test set otherwise.
        let total_jobs = tenants * jobs_per_tenant;
        let jobs: Vec<JobRequest> = (0..total_jobs)
            .map(|j| {
                let img = match &trace {
                    Some(images) => images[j % images.len()],
                    None => j as u64,
                } % shard.test_set.len() as u64;
                JobRequest {
                    arch: arch_id.to_owned(),
                    scale: scale_id.clone(),
                    image: ImageSpec {
                        test_index: Some(img),
                        inline: None,
                    },
                    budget,
                    program: None,
                    seed: 1000 + j as u64,
                }
            })
            .collect();

        // Phase 1: isolated single-session baseline, sequential. With
        // --repeat N the timing keeps the best pass (the contents are
        // deterministic, so re-runs only re-measure).
        let mut baselines: Vec<(u64, String)> = Vec::new();
        let mut baseline_cps: f64 = 0.0;
        for rep in 0..repeat {
            let t0 = Instant::now();
            let pass: Vec<(u64, String)> = jobs.iter().map(|j| run_baseline(&shard, j)).collect();
            let secs = t0.elapsed().as_secs_f64();
            let queries: u64 = pass.iter().map(|(q, _)| q).sum();
            baseline_cps = baseline_cps.max(queries as f64 / secs.max(1e-9));
            if rep == 0 {
                baselines = pass;
            } else {
                assert_eq!(pass, baselines, "isolated baseline must be deterministic");
            }
        }

        // Phase 2: the same jobs through the daemon, `tenants`
        // concurrent connections; best throughput of `repeat` passes,
        // every pass digest-checked against the first.
        let jobs = Arc::new(jobs);
        let mut aggregate_cps: f64 = 0.0;
        let mut results: Vec<(usize, JobOutcome, f64)> = Vec::new();
        let mut arch_fnv = jobs_fnv;
        for rep in 0..repeat {
            let barrier = Arc::new(Barrier::new(tenants + 1));
            let handles: Vec<_> = (0..tenants)
                .map(|t| {
                    let jobs = Arc::clone(&jobs);
                    let barrier = Arc::clone(&barrier);
                    std::thread::spawn(move || {
                        let mut stream = TcpStream::connect(addr).expect("connect");
                        stream.set_nodelay(true).ok();
                        barrier.wait();
                        let mut results = Vec::new();
                        for j in (t..jobs.len()).step_by(tenants) {
                            let (outcome, latency) = submit(&mut stream, &jobs[j]);
                            results.push((j, outcome, latency));
                        }
                        results
                    })
                })
                .collect();
            barrier.wait();
            let t0 = Instant::now();
            let mut pass: Vec<(usize, JobOutcome, f64)> = Vec::new();
            for h in handles {
                pass.extend(h.join().expect("tenant thread"));
            }
            let server_secs = t0.elapsed().as_secs_f64();
            let served_queries: u64 = pass.iter().map(|(_, o, _)| o.queries).sum();
            let pass_cps = served_queries as f64 / server_secs.max(1e-9);
            pass.sort_by_key(|(j, _, _)| *j);
            ground_jobs += pass.len() as u64;
            ground_queries += served_queries;

            // Determinism gate: every pass through the shared scheduler
            // must reproduce every isolated baseline byte-for-byte
            // (queries and log digest).
            for (j, outcome, _) in &pass {
                let (want_queries, want_digest) = &baselines[*j];
                if outcome.queries != *want_queries || outcome.log_fnv != *want_digest {
                    determinism_ok = false;
                    eprintln!(
                        "DETERMINISM FAIL: {arch_id} rep {rep} job {j}: served {} queries \
                         (digest {}) vs isolated {} ({})",
                        outcome.queries, outcome.log_fnv, want_queries, want_digest
                    );
                }
            }
            let pass_fnv = pass
                .iter()
                .fold(jobs_fnv, |h, (_, o, _)| fnv_mix(h, o.log_fnv.as_bytes()));
            if rep == 0 {
                arch_fnv = pass_fnv;
            } else if pass_fnv != arch_fnv {
                determinism_ok = false;
                eprintln!("DETERMINISM FAIL: {arch_id} rep {rep} jobs_fnv differs from rep 0");
            }
            if pass_cps > aggregate_cps || rep == 0 {
                aggregate_cps = pass_cps;
                results = pass;
            }
        }
        jobs_fnv = arch_fnv;
        let served_queries: u64 = results.iter().map(|(_, o, _)| o.queries).sum();

        let mut latencies: Vec<f64> = results.iter().map(|(_, _, l)| *l).collect();
        latencies.sort_by(f64::total_cmp);
        // Per-tenant latency percentiles: job j ran on tenant j % tenants,
        // so one slow tenant shows up here even when the aggregate hides
        // it behind the other connections.
        let tenant_latency: Vec<TenantLatency> = (0..tenants)
            .map(|t| {
                let mut lats: Vec<f64> = results
                    .iter()
                    .filter(|(j, _, _)| j % tenants == t)
                    .map(|(_, _, l)| *l)
                    .collect();
                lats.sort_by(f64::total_cmp);
                TenantLatency {
                    tenant: t,
                    p50_ms: percentile_ms(&lats, 0.50),
                    p99_ms: percentile_ms(&lats, 0.99),
                }
            })
            .collect();
        let row = ArchRow {
            arch: arch_id.to_owned(),
            input,
            jobs: total_jobs,
            total_queries: served_queries,
            baseline_cps,
            aggregate_cps,
            p50_ms: percentile_ms(&latencies, 0.50),
            p99_ms: percentile_ms(&latencies, 0.99),
            speedup: aggregate_cps / baseline_cps.max(1e-9),
            tenant_latency,
        };
        eprintln!(
            "{}: {} jobs, {} queries, baseline {:.0} cand/s, server {:.0} cand/s \
             (x{:.2}), p50 {:.1} ms, p99 {:.1} ms",
            row.arch,
            row.jobs,
            row.total_queries,
            row.baseline_cps,
            row.aggregate_cps,
            row.speedup,
            row.p50_ms,
            row.p99_ms
        );
        rows.push(row);
    }

    // One row per line, like the other BENCH_*.json reports, so
    // bench_gate.sh's line-oriented parser picks up `server_speedup`.
    let mut report = String::new();
    report.push_str("{\n");
    report.push_str("  \"benchmark\": \"attack_server\",\n");
    report.push_str(&format!("  \"tenants\": {tenants},\n"));
    report.push_str(&format!("  \"workers\": {workers},\n"));
    report.push_str(&format!("  \"max_merge\": {max_merge},\n"));
    report.push_str(&format!("  \"jobs_per_tenant\": {jobs_per_tenant},\n"));
    report.push_str(&format!("  \"budget\": {budget},\n"));
    report.push_str(&format!("  \"repeat\": {repeat},\n"));
    report.push_str(&format!(
        "  \"determinism\": \"{}\",\n",
        if determinism_ok { "ok" } else { "FAILED" }
    ));
    report.push_str(&format!(
        "  \"metrics\": \"{}\",\n",
        if metrics_on { "on" } else { "off" }
    ));
    report.push_str(&format!("  \"jobs_fnv\": \"{jobs_fnv:016x}\",\n"));
    // Headline serving-capacity figure: the best per-arch aggregate the
    // scheduler sustained in this run (compare against the batched
    // inference bench's candidates/sec geomean).
    let peak = rows.iter().map(|r| r.aggregate_cps).fold(0.0, f64::max);
    report.push_str(&format!(
        "  \"peak_aggregate_candidates_per_sec\": {peak:.1},\n"
    ));
    report.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        // Per-tenant percentiles ride on the arch row (optional fields:
        // bench_gate.sh only extracts `*_speedup` keys from arch lines,
        // so older gates and reports interoperate either way).
        let tenant_json: Vec<String> = r
            .tenant_latency
            .iter()
            .map(|t| {
                format!(
                    "{{\"tenant\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}",
                    t.tenant, t.p50_ms, t.p99_ms
                )
            })
            .collect();
        let worst_p99 = r
            .tenant_latency
            .iter()
            .map(|t| t.p99_ms)
            .fold(0.0, f64::max);
        report.push_str(&format!(
            "    {{\"arch\": \"{}\", \"input\": \"{}\", \"jobs\": {}, \"total_queries\": {}, \
             \"baseline_candidates_per_sec\": {:.1}, \"aggregate_candidates_per_sec\": {:.1}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"worst_tenant_p99_ms\": {:.3}, \
             \"tenant_latency\": [{}], \"server_speedup\": {:.3}}}{}\n",
            r.arch,
            r.input,
            r.jobs,
            r.total_queries,
            r.baseline_cps,
            r.aggregate_cps,
            r.p50_ms,
            r.p99_ms,
            worst_p99,
            tenant_json.join(", "),
            r.speedup,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    report.push_str("  ]\n}\n");
    let mut file = std::fs::File::create(&out_path).expect("create report");
    file.write_all(report.as_bytes()).expect("write report");
    eprintln!("server_loadtest: report written to {out_path}");

    // Metrics cross-check: the scraped counters must equal the ground
    // truth this harness tallied from the job outcomes themselves. The
    // plane is passive, so any drift is an accounting bug — fail loudly.
    let mut metrics_ok = true;
    if metrics_on {
        let addr = server.metrics_addr().expect("metrics listener is up");
        let page = scrape_metrics(addr);
        for (name, want) in [
            ("jobs_done", ground_jobs),
            ("queries_total", ground_queries),
        ] {
            let got = scraped_value(&page, name);
            if got == want {
                eprintln!("server_loadtest: /metrics {name} = {got} matches ground truth");
            } else {
                metrics_ok = false;
                eprintln!(
                    "METRICS FAIL: /metrics reports {name} = {got}, ground truth counted {want}"
                );
            }
        }
    }

    server.request_shutdown();
    drop(server);
    #[cfg(feature = "telemetry")]
    {
        let snap = oppsla_core::telemetry::snapshot();
        eprintln!("server_loadtest telemetry: {}", snap.summary());
        eprintln!(
            "server_loadtest scheduler: {} grouped calls, {} submissions merged",
            snap.get(oppsla_core::telemetry::Counter::SchedGroupedCalls),
            snap.get(oppsla_core::telemetry::Counter::SchedGroupedSubmissions),
        );
    }
    if !determinism_ok {
        eprintln!("server_loadtest: determinism check FAILED");
        std::process::exit(1);
    }
    if !metrics_ok {
        eprintln!("server_loadtest: metrics cross-check FAILED");
        std::process::exit(1);
    }
}
