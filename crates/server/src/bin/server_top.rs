//! `server_top`: a refreshing console view of a running attack daemon.
//!
//! Polls the daemon's `Stats` frame (the framed protocol, not HTTP) and
//! renders per-tenant and per-shard tables plus the slow-request log.
//!
//! ```text
//! server_top [--addr 127.0.0.1:7431] [--interval-ms 1000]
//!            [--iters N] [--once] [--no-clear]
//! ```
//!
//! `--once` prints a single frame and exits (same as `--iters 1`);
//! `--no-clear` appends frames instead of redrawing in place (for logs
//! and CI). Exits nonzero when the daemon is unreachable.

use oppsla_server::cli::Args;
use oppsla_server::protocol::{read_frame, write_frame, Request, Response, StatsReport};
use std::net::TcpStream;

fn poll(stream: &mut TcpStream) -> Result<StatsReport, String> {
    let json = serde_json::to_string(&Request::Stats).expect("serialize Stats");
    write_frame(stream, &json).map_err(|e| format!("send Stats: {e}"))?;
    let reply = read_frame(stream)
        .map_err(|e| format!("read Stats reply: {e}"))?
        .ok_or_else(|| "server closed the connection".to_string())?;
    match serde_json::from_str::<Response>(&reply) {
        Ok(Response::Stats(report)) => Ok(report),
        Ok(other) => Err(format!("unexpected reply to Stats: {other:?}")),
        Err(e) => Err(format!("bad Stats reply: {e}")),
    }
}

fn main() {
    let args = Args::parse();
    let addr = args.get_str("addr", "127.0.0.1:7431");
    let interval = std::time::Duration::from_millis(args.get_u64("interval-ms", 1000));
    let iters = if args.flag("once") {
        1
    } else {
        args.get_u64("iters", u64::MAX)
    };
    let clear = !args.flag("no-clear");

    let mut stream = match TcpStream::connect(&addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("server_top: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    stream.set_nodelay(true).ok();

    let mut prev: Option<StatsReport> = None;
    for i in 0..iters {
        let report = match poll(&mut stream) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("server_top: {e}");
                std::process::exit(1);
            }
        };
        let frame = oppsla_server::top::render(&report, prev.as_ref());
        if clear {
            // ANSI: home + clear-to-end, so a shrinking table leaves no
            // stale rows behind.
            print!("\x1b[H\x1b[2J{frame}");
        } else {
            println!("{frame}");
        }
        use std::io::Write as _;
        std::io::stdout().flush().ok();
        prev = Some(report);
        if i + 1 < iters {
            std::thread::sleep(interval);
        }
    }
}
