//! A minimal `--key value` / `--flag` argument parser for the server
//! binaries (same conventions as the experiment binaries; no external
//! CLI dependency).

use std::collections::HashMap;

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `std::env::args()`. `--key value` populates values; a
    /// trailing `--key` with no value (or followed by another `--…`) is
    /// a boolean flag.
    ///
    /// # Panics
    ///
    /// Panics (with a usage hint) on a positional argument.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (for tests).
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Args::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            let Some(key) = arg.strip_prefix("--") else {
                panic!("unexpected positional argument {arg:?}; use --key value");
            };
            match iter.peek() {
                Some(v) if !v.starts_with("--") => {
                    let v = iter.next().expect("peeked");
                    out.values.insert(key.to_owned(), v);
                }
                _ => out.flags.push(key.to_owned()),
            }
        }
        out
    }

    /// A `usize` value or `default`.
    ///
    /// # Panics
    ///
    /// Panics when the value is present but unparseable.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects an integer, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// A `u64` value or `default`.
    ///
    /// # Panics
    ///
    /// Panics when the value is present but unparseable.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects an integer, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// The raw value of `--key`, or `None` when the key is absent.
    pub fn get_opt_str(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// A string value or `default`.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_owned())
    }

    /// True when `--key` was given as a bare flag.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::from_args(list.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn values_flags_and_defaults() {
        let a = args(&["--tenants", "8", "--out", "x.json", "--quiet"]);
        assert_eq!(a.get_usize("tenants", 1), 8);
        assert_eq!(a.get_str("out", "def"), "x.json");
        assert_eq!(a.get_u64("budget", 400), 400);
        assert!(a.flag("quiet"));
        assert!(!a.flag("verbose"));
        assert_eq!(a.get_opt_str("missing"), None);
    }

    #[test]
    #[should_panic(expected = "positional")]
    fn positional_arguments_are_rejected() {
        let _ = args(&["oops"]);
    }
}
