//! Attack-as-a-service: a long-running daemon running many OPPSLA attack
//! sessions concurrently over one model zoo.
//!
//! * [`protocol`] — length-prefixed JSON frames; job and response types.
//! * [`zoo`] — lazily trained, concurrently shared model shards.
//! * [`scheduler`] — the cross-session batch scheduler: all tenants'
//!   candidate queries flow through one shared queue and are packed into
//!   multi-base grouped GEMM calls, bit-identical per tenant to an
//!   isolated sequential session.
//! * [`session`] — per-job validation, budget enforcement, and the
//!   query-log digest that witnesses determinism.
//! * [`server`] — the TCP daemon: accept loop, per-connection framing,
//!   bounded admission control.
//! * [`cli`] — the tiny `--key value` parser the binaries share.
//!
//! The `oppsla_serverd` binary runs the daemon; `server_loadtest` boots
//! one in-process, replays synthetic multi-tenant traffic against it,
//! and emits the `BENCH_server.json` report CI gates.

#![warn(missing_docs)]

pub mod cli;
pub mod protocol;
pub mod scheduler;
pub mod server;
pub mod session;
pub mod zoo;
