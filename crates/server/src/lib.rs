//! Attack-as-a-service: a long-running daemon running many OPPSLA attack
//! sessions concurrently over one model zoo.
//!
//! * [`protocol`] — length-prefixed JSON frames; job and response types.
//! * [`zoo`] — lazily trained, concurrently shared model shards.
//! * [`scheduler`] — the cross-session batch scheduler: all tenants'
//!   candidate queries flow through one shared queue and are packed into
//!   multi-base grouped GEMM calls, bit-identical per tenant to an
//!   isolated sequential session.
//! * [`metrics`] — the live metrics plane: lock-light registry handles
//!   the hot paths bump, the slow-request log, and the snapshot the
//!   `Stats` frame answers.
//! * [`metrics_http`] — the plaintext Prometheus-style `/metrics`
//!   listener (its own thread, never on the job path).
//! * [`top`] — rendering for `server_top`, the refreshing console view
//!   over `Stats` snapshots.
//! * [`session`] — per-job validation, budget enforcement, and the
//!   query-log digest that witnesses determinism.
//! * [`server`] — the TCP daemon: accept loop, per-connection framing,
//!   bounded admission control.
//! * [`cli`] — the tiny `--key value` parser the binaries share.
//!
//! The `oppsla_serverd` binary runs the daemon; `server_loadtest` boots
//! one in-process, replays synthetic multi-tenant traffic against it,
//! and emits the `BENCH_server.json` report CI gates.

#![warn(missing_docs)]

pub mod cli;
pub mod metrics;
pub mod metrics_http;
pub mod protocol;
pub mod scheduler;
pub mod server;
pub mod session;
pub mod top;
pub mod zoo;
