//! The server's live metrics plane.
//!
//! One [`ServerMetrics`] instance per daemon aggregates everything the
//! observability surfaces expose: the Prometheus-style `/metrics` page,
//! the machine-readable [`StatsReport`] frame, and `server_top`'s
//! console view all read from the same [`Registry`].
//!
//! Three rules keep this plane cheap and harmless:
//!
//! 1. **Atomics only on the hot path.** Every per-query and per-batch
//!    update goes through a pre-registered [`Counter`]/[`Gauge`]/
//!    [`Histogram`] handle — a handful of relaxed atomic adds, no locks,
//!    no allocation. The registry's mutex is touched only at
//!    registration (once per shard/tenant) and at readout.
//! 2. **Passive by construction.** Nothing on the serving or scheduling
//!    path ever *reads* a metric to make a decision, so enabling metrics
//!    cannot change job outcomes: the `log_fnv` determinism witness is
//!    byte-identical metrics-on vs metrics-off (CI A/B-tests this).
//! 3. **Bounded cardinality.** Tenants are server-assigned sequential
//!    ids; past [`MAX_TENANT_SERIES`] distinct tenants, further ones
//!    share one `tenant="overflow"` series so a reconnect storm cannot
//!    grow the registry without bound.

use crate::protocol::{SlowJob, StatsMetric, StatsReport};
use crate::zoo::ShardKey;
use oppsla_obs::metrics::{Counter, Gauge, Histogram, Registry};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Distinct per-tenant label values kept before new tenants fold into
/// the shared `tenant="overflow"` series.
pub const MAX_TENANT_SERIES: u64 = 64;

/// Completed jobs remembered by the slow-request log (the N worst by
/// wall time since the server started).
pub const SLOW_LOG_CAPACITY: usize = 8;

/// Pre-registered handles for one scheduler shard (one `(arch, scale)`
/// pair), labelled `shard="<arch>/<scale>"`.
pub struct ShardMetrics {
    /// Submissions sitting in the shared queue for this shard right now.
    pub queue_depth: Arc<Gauge>,
    /// Grouped delta dispatches packing two or more tenants' submissions.
    pub grouped_calls: Arc<Counter>,
    /// Delta dispatches that went out solo (no merge partner arrived).
    pub solo_calls: Arc<Counter>,
    /// Full-forward dispatches (baseline queries; never merged).
    pub full_calls: Arc<Counter>,
    /// Total delta submissions dispatched (across grouped and solo
    /// calls; `merged_submissions / (grouped + solo)` is the mean fill).
    pub merged_submissions: Arc<Counter>,
    /// Batches that held the coalescing window open waiting for more
    /// tenants (occupancy of the window, vs. immediate dispatch).
    pub coalesce_waits: Arc<Counter>,
    /// Delta batch sizes, in submissions (fill ratio = size/max_merge).
    pub batch_size: Arc<Histogram>,
    /// Session base-snapshot LRU hits (from the worker sessions).
    pub lru_hits: Arc<Counter>,
    /// LRU rebases: an evicted snapshot was recaptured (the eviction
    /// counter — a rebase is exactly one eviction plus one recapture).
    pub lru_rebases: Arc<Counter>,
    /// LRU cold fills (capacity not yet reached; nothing evicted).
    pub lru_colds: Arc<Counter>,
}

/// Pre-registered handles for one tenant (a connection), labelled
/// `tenant="t<seq>"` in connection-accept order.
pub struct TenantMetrics {
    /// The label value these handles carry (`"t3"`, or `"overflow"`).
    pub id: String,
    /// Jobs past admission (includes those that waited for a slot).
    pub jobs_admitted: Arc<Counter>,
    /// Jobs that had to wait in the admission queue before running.
    pub jobs_waited: Arc<Counter>,
    /// Jobs rejected because the waiting room was full.
    pub jobs_rejected: Arc<Counter>,
    /// Jobs that completed with an outcome.
    pub jobs_done: Arc<Counter>,
    /// Jobs that failed validation or errored.
    pub jobs_errored: Arc<Counter>,
    /// Counted oracle queries spent across this tenant's jobs.
    pub queries: Arc<Counter>,
    /// Queries served from the shard memo (uncounted in `queries`).
    pub memo_hits: Arc<Counter>,
    /// Sum of the query budgets of admitted jobs.
    pub budget_granted: Arc<Counter>,
    /// Budget remaining at completion, summed over finished jobs
    /// (`budget - queries` per job: how much headroom the tenant left).
    pub budget_unspent: Arc<Counter>,
}

/// Ring of the worst-latency completed jobs, kept sorted slowest-first.
struct SlowLog {
    worst: Vec<SlowJob>,
}

impl SlowLog {
    fn push(&mut self, job: SlowJob) {
        let pos = self
            .worst
            .iter()
            .position(|j| j.wall_us < job.wall_us)
            .unwrap_or(self.worst.len());
        if pos < SLOW_LOG_CAPACITY {
            self.worst.insert(pos, job);
            self.worst.truncate(SLOW_LOG_CAPACITY);
        }
    }
}

/// The daemon's metric registry plus its server-wide handles and the
/// slow-request log. Shared (`Arc`) between the accept loop, connection
/// threads, scheduler workers, the `/metrics` listener, and the zoo.
pub struct ServerMetrics {
    registry: Registry,
    started: Instant,
    /// Open client connections right now.
    pub connections: Arc<Gauge>,
    /// Jobs running right now (admission slots held).
    pub jobs_active: Arc<Gauge>,
    /// Jobs parked in the admission waiting room right now.
    pub jobs_waiting: Arc<Gauge>,
    /// Jobs past admission, across all tenants.
    pub jobs_admitted: Arc<Counter>,
    /// Jobs rejected at admission, across all tenants.
    pub jobs_rejected: Arc<Counter>,
    /// Jobs completed with an outcome, across all tenants.
    pub jobs_done: Arc<Counter>,
    /// Jobs that failed validation or errored, across all tenants.
    pub jobs_errored: Arc<Counter>,
    /// Counted oracle queries across all completed jobs. CI cross-checks
    /// this against ground-truth client-side counts after a loadtest.
    pub queries_total: Arc<Counter>,
    /// Shard-memo hits across all completed jobs.
    pub memo_hits_total: Arc<Counter>,
    /// End-to-end job wall time (admission to response), microseconds.
    pub job_latency_us: Arc<Histogram>,
    /// Zoo train-once latches fired (cold shards trained or loaded).
    pub zoo_shard_trains: Arc<Counter>,
    shards: Mutex<HashMap<ShardKey, Arc<ShardMetrics>>>,
    tenant_series: Mutex<u64>,
    slow: Mutex<SlowLog>,
}

impl ServerMetrics {
    /// A fresh plane with the server-wide instruments registered.
    #[must_use]
    pub fn new() -> Self {
        let registry = Registry::new();
        ServerMetrics {
            connections: registry.gauge("connections", &[]),
            jobs_active: registry.gauge("jobs_active", &[]),
            jobs_waiting: registry.gauge("jobs_waiting", &[]),
            jobs_admitted: registry.counter("jobs_admitted", &[]),
            jobs_rejected: registry.counter("jobs_rejected", &[]),
            jobs_done: registry.counter("jobs_done", &[]),
            jobs_errored: registry.counter("jobs_errored", &[]),
            queries_total: registry.counter("queries_total", &[]),
            memo_hits_total: registry.counter("memo_hits_total", &[]),
            job_latency_us: registry.histogram("job_latency_us", &[]),
            zoo_shard_trains: registry.counter("zoo_shard_trains", &[]),
            shards: Mutex::new(HashMap::new()),
            tenant_series: Mutex::new(0),
            slow: Mutex::new(SlowLog { worst: Vec::new() }),
            started: Instant::now(),
            registry,
        }
    }

    /// The handles for `shard`, registering them on first request.
    /// Callers cache the returned `Arc` (per worker, per classifier) so
    /// the registry lock is paid once per shard, not per query.
    pub fn shard(&self, shard: ShardKey) -> Arc<ShardMetrics> {
        let mut shards = self
            .shards
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        Arc::clone(shards.entry(shard).or_insert_with(|| {
            let value = format!("{}/{}", shard.0.id(), shard.1.id());
            let labels: &[(&str, &str)] = &[("shard", &value)];
            Arc::new(ShardMetrics {
                queue_depth: self.registry.gauge("sched_queue_depth", labels),
                grouped_calls: self.registry.counter("sched_grouped_calls", labels),
                solo_calls: self.registry.counter("sched_solo_calls", labels),
                full_calls: self.registry.counter("sched_full_calls", labels),
                merged_submissions: self.registry.counter("sched_merged_submissions", labels),
                coalesce_waits: self.registry.counter("sched_coalesce_waits", labels),
                batch_size: self.registry.histogram("sched_batch_size", labels),
                lru_hits: self.registry.counter("session_lru_hits", labels),
                lru_rebases: self.registry.counter("session_lru_rebases", labels),
                lru_colds: self.registry.counter("session_lru_colds", labels),
            })
        }))
    }

    /// Handles for the next tenant, labelled `t<seq>` in registration
    /// order — or `overflow` once [`MAX_TENANT_SERIES`] distinct tenants
    /// exist (the overflow series is shared, keeping cardinality
    /// bounded under reconnect storms).
    pub fn tenant(&self) -> TenantMetrics {
        let seq = {
            let mut next = self
                .tenant_series
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            let seq = *next;
            *next += 1;
            seq
        };
        let id = if seq < MAX_TENANT_SERIES {
            format!("t{seq}")
        } else {
            "overflow".to_string()
        };
        let labels: &[(&str, &str)] = &[("tenant", &id)];
        TenantMetrics {
            jobs_admitted: self.registry.counter("tenant_jobs_admitted", labels),
            jobs_waited: self.registry.counter("tenant_jobs_waited", labels),
            jobs_rejected: self.registry.counter("tenant_jobs_rejected", labels),
            jobs_done: self.registry.counter("tenant_jobs_done", labels),
            jobs_errored: self.registry.counter("tenant_jobs_errored", labels),
            queries: self.registry.counter("tenant_queries", labels),
            memo_hits: self.registry.counter("tenant_memo_hits", labels),
            budget_granted: self.registry.counter("tenant_budget_granted", labels),
            budget_unspent: self.registry.counter("tenant_budget_unspent", labels),
            id,
        }
    }

    /// Offers a completed job to the slow-request log; it is kept only
    /// while it ranks among the [`SLOW_LOG_CAPACITY`] worst by wall time.
    pub fn record_slow(&self, job: SlowJob) {
        self.slow
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(job);
    }

    /// The machine-readable snapshot answered to a `Stats` frame: every
    /// registered metric (sorted by key) plus the slow-request log.
    #[must_use]
    pub fn snapshot(&self) -> StatsReport {
        let metrics = self
            .registry
            .samples()
            .into_iter()
            .map(|s| StatsMetric {
                key: s.key,
                value: s.value,
            })
            .collect();
        let slow_jobs = self
            .slow
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .worst
            .clone();
        StatsReport {
            uptime_ms: u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX),
            metrics,
            slow_jobs,
        }
    }

    /// The plaintext Prometheus exposition page for `/metrics`.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oppsla_eval::zoo::Scale;
    use oppsla_nn::models::Arch;

    fn slow(tenant: &str, wall_us: u64) -> SlowJob {
        SlowJob {
            tenant: tenant.into(),
            arch: "mlp".into(),
            scale: "shapes32".into(),
            status: "success".into(),
            queries: 10,
            full_queries: 1,
            delta_queries: 9,
            memo_hits: 0,
            wall_us,
            budget: 100,
        }
    }

    #[test]
    fn shard_handles_are_shared_and_labelled() {
        let m = ServerMetrics::new();
        let a = m.shard((Arch::Mlp, Scale::Cifar));
        let b = m.shard((Arch::Mlp, Scale::Cifar));
        assert!(Arc::ptr_eq(&a, &b), "one ShardMetrics per shard");
        a.queue_depth.inc();
        let report = m.snapshot();
        let depth = report
            .metrics
            .iter()
            .find(|s| s.key == "sched_queue_depth{shard=\"mlp/shapes32\"}")
            .expect("labelled queue depth sample");
        assert!((depth.value - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn tenants_get_sequential_ids_then_overflow() {
        let m = ServerMetrics::new();
        assert_eq!(m.tenant().id, "t0");
        assert_eq!(m.tenant().id, "t1");
        for _ in 2..MAX_TENANT_SERIES {
            m.tenant();
        }
        let over = m.tenant();
        assert_eq!(over.id, "overflow");
        let over2 = m.tenant();
        assert!(
            Arc::ptr_eq(&over.queries, &over2.queries),
            "overflow tenants share one series"
        );
    }

    #[test]
    fn slow_log_keeps_the_worst_sorted() {
        let m = ServerMetrics::new();
        for (i, wall) in [50u64, 900, 10, 700, 30, 999, 40, 800, 20, 60]
            .iter()
            .enumerate()
        {
            m.record_slow(slow(&format!("t{i}"), *wall));
        }
        let report = m.snapshot();
        assert_eq!(report.slow_jobs.len(), SLOW_LOG_CAPACITY);
        let walls: Vec<u64> = report.slow_jobs.iter().map(|j| j.wall_us).collect();
        let mut sorted = walls.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(walls, sorted, "slowest first");
        assert_eq!(walls[0], 999);
        assert!(!walls.contains(&10), "the fastest fell off the ring");
        assert!(!walls.contains(&20));
    }

    #[test]
    fn snapshot_carries_the_global_instruments() {
        let m = ServerMetrics::new();
        m.queries_total.add(123);
        m.jobs_done.inc();
        m.job_latency_us.observe(1000);
        let report = m.snapshot();
        let get = |key: &str| {
            report
                .metrics
                .iter()
                .find(|s| s.key == key)
                .unwrap_or_else(|| panic!("missing {key}"))
                .value
        };
        assert!((get("queries_total") - 123.0).abs() < f64::EPSILON);
        assert!((get("jobs_done") - 1.0).abs() < f64::EPSILON);
        assert!((get("job_latency_us_count") - 1.0).abs() < f64::EPSILON);
        let page = m.render_prometheus();
        assert!(page.contains("queries_total 123"), "{page}");
        assert!(page.contains("jobs_done 1"), "{page}");
    }
}
