//! A dedicated plaintext `/metrics` listener.
//!
//! Prometheus-style scrapers speak HTTP, not the daemon's framed
//! protocol, so the exposition page gets its own tiny listener thread —
//! deliberately minimal: parse the request line of a `GET`, answer
//! `/metrics` with `text/plain`, everything else with 404, close the
//! connection. Scrapes never touch the job path; they read the same
//! atomics the hot path writes, so a scrape storm costs one thread some
//! formatting work and nothing else.

use crate::metrics::ServerMetrics;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The running exposition listener; joined on server drain.
pub struct MetricsServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` and serves `metrics` until [`MetricsServer::stop`].
    /// Port 0 picks a free port (see [`MetricsServer::local_addr`]).
    ///
    /// # Errors
    ///
    /// Returns an error when the address cannot be bound.
    pub fn start(addr: &str, metrics: Arc<ServerMetrics>) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let thread = std::thread::Builder::new()
            .name("metrics-http".into())
            .spawn(move || {
                while !flag.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => serve_scrape(stream, &metrics),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                }
            })
            .expect("spawn metrics listener");
        Ok(MetricsServer {
            local_addr,
            shutdown,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting and joins the listener thread.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Answers one scrape. Malformed or slow clients cost at most the read
/// timeout; every response closes the connection.
fn serve_scrape(stream: TcpStream, metrics: &ServerMetrics) {
    stream.set_read_timeout(Some(Duration::from_secs(2))).ok();
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain the headers so the peer's send buffer is consumed before we
    // answer (some clients treat an early response + close as an error).
    let mut header = String::new();
    loop {
        header.clear();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => {}
            Err(_) => return,
        }
    }
    let mut stream = reader.into_inner();
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let response = if method == "GET" && (path == "/metrics" || path == "/metrics/") {
        let body = metrics.render_prometheus();
        format!(
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
    } else {
        let body = "not found; try /metrics\n";
        format!(
            "HTTP/1.1 404 Not Found\r\nContent-Type: text/plain\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
    };
    let _ = stream.write_all(response.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn http_get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn scrape_serves_the_exposition_page() {
        let metrics = Arc::new(ServerMetrics::new());
        metrics.queries_total.add(77);
        let mut server = MetricsServer::start("127.0.0.1:0", Arc::clone(&metrics)).unwrap();
        let page = http_get(server.local_addr(), "/metrics");
        assert!(page.starts_with("HTTP/1.1 200 OK"), "{page}");
        assert!(page.contains("text/plain"), "{page}");
        assert!(page.contains("queries_total 77"), "{page}");
        // A second scrape sees updates: the page is live, not cached.
        metrics.queries_total.add(1);
        let page = http_get(server.local_addr(), "/metrics");
        assert!(page.contains("queries_total 78"), "{page}");
        let missing = http_get(server.local_addr(), "/other");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        server.stop();
    }
}
