//! The wire protocol: length-prefixed JSON frames and the job types.
//!
//! A connection is a sequence of *frames*, each a 4-byte little-endian
//! length followed by that many bytes of UTF-8 JSON. The client sends
//! [`Request`] frames and receives one [`Response`] frame per request, in
//! order. Length-prefixing (rather than newline-delimiting) keeps the
//! framing unambiguous no matter what the JSON contains, and lets the
//! server reject oversized frames before buffering them.
//!
//! Every parse failure is a *recoverable, per-connection* error: the
//! server answers malformed input with a [`Response::Error`] frame (or
//! closes just that connection when the framing itself is broken) and
//! keeps serving other tenants — a hostile client must never take the
//! daemon down.

use oppsla_nn::models::Arch;
use std::io::{self, Read, Write};

/// Frames larger than this are rejected before buffering (a hostile
/// length prefix must not make the server allocate gigabytes). 16 MiB
/// comfortably covers an inline ImageNet-scale image with JSON overhead.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Framing-layer errors (distinct from JSON-level errors so the
/// connection loop can tell "close the connection" from "answer with an
/// error response").
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed.
    Io(io::Error),
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    TooLong(u32),
    /// The payload is not UTF-8.
    NotUtf8,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o failed: {e}"),
            FrameError::TooLong(n) => {
                write!(
                    f,
                    "frame of {n} bytes exceeds the {MAX_FRAME_LEN} byte limit"
                )
            }
            FrameError::NotUtf8 => write!(f, "frame payload is not UTF-8"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame: `len: u32 LE` then `len` bytes of payload.
///
/// # Errors
///
/// Returns an error when the payload exceeds [`MAX_FRAME_LEN`] or the
/// stream fails.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&n| n <= MAX_FRAME_LEN)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("frame of {} bytes exceeds the limit", payload.len()),
            )
        })?;
    // One write for prefix + payload: a split write would let Nagle hold
    // the payload segment until the peer ACKs the prefix — a 40 ms
    // delayed-ACK stall on every frame.
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(payload.as_bytes());
    w.write_all(&frame)?;
    w.flush()
}

/// Reads one frame. Returns `Ok(None)` on a clean EOF *before* the length
/// prefix (the peer hung up between requests — not an error).
///
/// # Errors
///
/// Returns [`FrameError`] on a truncated frame, an oversized length
/// prefix, non-UTF-8 payload, or stream failure.
pub fn read_frame(r: &mut impl Read) -> Result<Option<String>, FrameError> {
    let mut len_bytes = [0u8; 4];
    // A clean EOF on the very first byte means the peer closed the
    // connection between frames; EOF anywhere later is a truncation.
    match r.read(&mut len_bytes[..1]) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(e.into()),
    }
    r.read_exact(&mut len_bytes[1..])?;
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(FrameError::TooLong(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| FrameError::NotUtf8)
}

/// The image a job attacks: an index into the shard's deterministic
/// attack test set, or an inline image. The vendored serde derive has no
/// `Option`-skipping, so requests always spell out both fields (unused
/// one `null`).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ImageSpec {
    /// Index into the shard's attack test set (see
    /// [`crate::zoo::ShardedZoo`]); the label comes from the set.
    pub test_index: Option<u64>,
    /// Inline image, `data` in row-major `[r, g, b]` per pixel, each
    /// channel in `[0, 1]`. Requires `true_class`.
    pub inline: Option<InlineImage>,
}

/// An image shipped inside the request.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct InlineImage {
    /// Image height in pixels.
    pub height: u64,
    /// Image width in pixels.
    pub width: u64,
    /// `height * width * 3` channel values in `[0, 1]`.
    pub data: Vec<f32>,
    /// The label the attack tries to flip away from.
    pub true_class: u64,
}

/// One attack job.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct JobRequest {
    /// Model architecture id (`"mlp"`, `"vgg-small"`, `"resnet-small"`,
    /// `"googlenet-small"`, `"densenet-small"`).
    pub arch: String,
    /// Dataset scale id (`"shapes32"` or `"shapes64"`).
    pub scale: String,
    /// The image to attack.
    pub image: ImageSpec,
    /// Oracle query budget for this job.
    pub budget: u64,
    /// Sketch program source, or `null` for the paper's example program.
    pub program: Option<String>,
    /// Seed for the attack's random choices (deterministic replay).
    pub seed: u64,
}

/// Client → server frame.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum Request {
    /// Run one attack job.
    Attack(JobRequest),
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Snapshot the live metrics plane; answered with
    /// [`Response::Stats`]. Always available — when the server was
    /// started with metrics disabled the report is empty (zero metrics,
    /// no slow jobs) rather than an error.
    Stats,
    /// Stop accepting connections and exit once in-flight jobs drain.
    Shutdown,
}

/// Result of a completed attack job.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct JobOutcome {
    /// `"success"`, `"failure"`, or `"already_misclassified"`.
    pub status: String,
    /// Oracle queries the job consumed (counted, budget-enforced).
    pub queries: u64,
    /// Flipping pixel `[row, col]` on success.
    pub location: Option<[u64; 2]>,
    /// Adversarial RGB value on success.
    pub pixel: Option<[f32; 3]>,
    /// Number of counted queries in the job's query log.
    pub log_len: u64,
    /// Queries served from the server's per-shard memo (never counted in
    /// `queries` or logged). Always 0 unless the deployment opted into
    /// `--memo` and was built with the `query-memo` feature.
    pub memo_hits: u64,
    /// FNV-1a 64 digest over the job's query log (seq, pixel, pred and
    /// per-query score hashes), as 16 hex digits. Two jobs interacted
    /// with the model identically iff their digests match — the
    /// determinism witness CI compares across scheduler configurations.
    pub log_fnv: String,
}

/// One flattened metric sample in a [`StatsReport`]: the fully-qualified
/// key (`name{label="value",…}` — same spelling as the Prometheus
/// exposition) and its current value. Counters and gauges report their
/// integer value; histograms are pre-flattened into `_count`, `_sum`,
/// `_p50`, `_p90`, and `_p99` samples. Values stay exact below 2^53.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StatsMetric {
    /// Fully-qualified metric key, e.g. `queries_total` or
    /// `sched_queue_depth{shard="mlp/shapes32"}`.
    pub key: String,
    /// Current value. Integral for counters/gauges/`_count`.
    pub value: f64,
}

/// One entry of the slow-request log: a completed job that ranked among
/// the N worst by wall time since the server started, with enough
/// attribution (route split, memoization) to see *why* it was slow.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SlowJob {
    /// Server-assigned tenant id (`"t0"`, `"t1"`, … in connection order).
    pub tenant: String,
    /// Architecture id the job attacked.
    pub arch: String,
    /// Scale id the job attacked.
    pub scale: String,
    /// Outcome status (`"success"` / `"failure"` /
    /// `"already_misclassified"`).
    pub status: String,
    /// Counted oracle queries the job consumed.
    pub queries: u64,
    /// Queries that took the full-image scoring route.
    pub full_queries: u64,
    /// Queries that took the sparse delta route.
    pub delta_queries: u64,
    /// Queries served from the per-shard memo (uncounted).
    pub memo_hits: u64,
    /// End-to-end wall time of the job in microseconds (admission to
    /// response, as observed by the serving thread).
    pub wall_us: u64,
    /// The job's query budget.
    pub budget: u64,
}

/// Machine-readable snapshot of the live metrics plane, answered to
/// [`Request::Stats`]. The same numbers as the Prometheus `/metrics`
/// page, in a form `server_top` and scripts can consume without a text
/// parser.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StatsReport {
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Every registered metric, sorted by key.
    pub metrics: Vec<StatsMetric>,
    /// Ring of the worst-latency completed jobs, slowest first.
    pub slow_jobs: Vec<SlowJob>,
}

/// Server → client frame.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Response {
    /// The job completed.
    Done(JobOutcome),
    /// The request was rejected or failed; the connection stays usable.
    Error(String),
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Stats`].
    Stats(StatsReport),
    /// Acknowledges [`Request::Shutdown`].
    ShuttingDown,
}

/// Parses an architecture id as used in reports and requests.
///
/// # Errors
///
/// Returns the unknown id.
pub fn parse_arch(id: &str) -> Result<Arch, String> {
    [
        Arch::VggSmall,
        Arch::ResNetSmall,
        Arch::GoogLeNetSmall,
        Arch::DenseNetSmall,
        Arch::Mlp,
    ]
    .into_iter()
    .find(|a| a.id() == id)
    .ok_or_else(|| format!("unknown arch {id:?}"))
}

/// Parses a scale id (`"shapes32"` / `"shapes64"`).
///
/// # Errors
///
/// Returns the unknown id.
pub fn parse_scale(id: &str) -> Result<oppsla_eval::zoo::Scale, String> {
    [
        oppsla_eval::zoo::Scale::Cifar,
        oppsla_eval::zoo::Scale::ImageNetLike,
    ]
    .into_iter()
    .find(|s| s.id() == id)
    .ok_or_else(|| format!("unknown scale {id:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("hello"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(""));
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_buffering() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert!(
            matches!(err, FrameError::TooLong(n) if n == u32::MAX),
            "{err}"
        );
    }

    #[test]
    fn truncated_frame_is_an_error_not_a_clean_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello").unwrap();
        buf.truncate(buf.len() - 2);
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert!(matches!(err, FrameError::Io(_)), "{err}");
    }

    #[test]
    fn non_utf8_payload_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&[0xff, 0xfe]);
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert!(matches!(err, FrameError::NotUtf8), "{err}");
    }

    #[test]
    fn wire_forms_are_stable() {
        // The CI probe and any non-Rust client build these frames by
        // hand, so the exact JSON spelling is part of the protocol.
        assert_eq!(serde_json::to_string(&Request::Ping).unwrap(), "\"Ping\"");
        assert_eq!(
            serde_json::to_string(&Request::Shutdown).unwrap(),
            "\"Shutdown\""
        );
        assert_eq!(serde_json::to_string(&Response::Pong).unwrap(), "\"Pong\"");
        assert_eq!(serde_json::to_string(&Request::Stats).unwrap(), "\"Stats\"");
    }

    #[test]
    fn stats_report_wire_form_is_stable() {
        // `server_top`, the CI probe, and the loadtest's scrape
        // cross-check all consume this frame; its JSON spelling is part
        // of the protocol like the unit frames above.
        let report = StatsReport {
            uptime_ms: 1500,
            metrics: vec![StatsMetric {
                key: "queries_total".into(),
                value: 42.0,
            }],
            slow_jobs: vec![SlowJob {
                tenant: "t0".into(),
                arch: "mlp".into(),
                scale: "shapes32".into(),
                status: "success".into(),
                queries: 37,
                full_queries: 5,
                delta_queries: 32,
                memo_hits: 0,
                wall_us: 1234,
                budget: 600,
            }],
        };
        let json = serde_json::to_string(&Response::Stats(report.clone())).unwrap();
        assert_eq!(
            json,
            concat!(
                "{\"Stats\":{\"uptime_ms\":1500,",
                "\"metrics\":[{\"key\":\"queries_total\",\"value\":42}],",
                "\"slow_jobs\":[{\"tenant\":\"t0\",\"arch\":\"mlp\",",
                "\"scale\":\"shapes32\",\"status\":\"success\",",
                "\"queries\":37,\"full_queries\":5,\"delta_queries\":32,",
                "\"memo_hits\":0,\"wall_us\":1234,\"budget\":600}]}}"
            )
        );
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Response::Stats(report));
    }

    #[test]
    fn requests_round_trip_through_json() {
        let req = Request::Attack(JobRequest {
            arch: "mlp".into(),
            scale: "cifar".into(),
            image: ImageSpec {
                test_index: Some(3),
                inline: None,
            },
            budget: 500,
            program: None,
            seed: 7,
        });
        let json = serde_json::to_string(&req).unwrap();
        let back: Request = serde_json::from_str(&json).unwrap();
        match back {
            Request::Attack(j) => {
                assert_eq!(j.arch, "mlp");
                assert_eq!(j.image.test_index, Some(3));
                assert_eq!(j.budget, 500);
            }
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn arch_and_scale_ids_round_trip() {
        for id in [
            "mlp",
            "vgg-small",
            "resnet-small",
            "googlenet-small",
            "densenet-small",
        ] {
            assert_eq!(parse_arch(id).unwrap().id(), id);
        }
        assert!(parse_arch("vgg").is_err());
        for id in ["shapes32", "shapes64"] {
            assert_eq!(parse_scale(id).unwrap().id(), id);
        }
        assert!(parse_scale("cifar10").is_err());
    }
}
