//! The cross-session batch scheduler — the server's tentpole.
//!
//! Every tenant session funnels its candidate queries through one shared
//! queue. Worker threads pop a submission, *merge* any other pending
//! submissions against the same model shard, and dispatch them as one
//! multi-base grouped call
//! ([`OwnedZooSession::scores_pixel_delta_grouped_into`]): candidates
//! from different tenants — even attacking different images — share one
//! im2col + GEMM pass. The grouped entry point is bit-identical per
//! candidate to an isolated sequential query by construction, so packing
//! changes *throughput only*: per-tenant scores, query counts, and query
//! logs are exactly those of a private session (the scheduler
//! equivalence tests assert this byte-for-byte).
//!
//! Each worker owns one [`OwnedZooSession`] per shard it has served,
//! with a base-snapshot LRU sized to the merge width, so interleaving
//! tenants does not rebase-thrash a single-slot cache.

use crate::metrics::{ServerMetrics, ShardMetrics};
use crate::zoo::{ShardKey, ShardedZoo};
use oppsla_core::image::Image;
use oppsla_core::oracle::Classifier;
use oppsla_core::pair::{Location, Pixel};
use oppsla_core::telemetry;
use oppsla_eval::zoo::{DeltaGroup, OwnedZooSession, SessionCacheStats};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Scheduler sizing.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Worker threads draining the shared queue.
    pub workers: usize,
    /// Maximum tenant submissions merged into one grouped call. Also the
    /// per-worker session cache capacity, so a merged call can never
    /// touch more distinct bases than the LRU holds.
    pub max_merge: usize,
    /// How long a worker may hold an under-full delta batch waiting for
    /// more tenants' submissions to arrive. Zero dispatches immediately.
    /// Waiting only happens while more sessions are live than the batch
    /// already covers, so a lone tenant never pays it; grouping changes
    /// throughput only, never scores (see module docs), so this trades
    /// bounded latency for merge depth with no effect on results.
    pub coalesce: Duration,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            workers: 2,
            max_merge: 8,
            coalesce: Duration::from_micros(200),
        }
    }
}

/// One unit of classifier work a tenant submitted.
enum Work {
    /// A full forward (baseline queries).
    Full(Image),
    /// One-pixel candidates against a shared base.
    Delta {
        base: Arc<Image>,
        candidates: Vec<(Location, Pixel)>,
    },
}

struct Submission {
    shard: ShardKey,
    work: Work,
    /// Flat scores, `num_classes` per candidate (one block for `Full`).
    reply: mpsc::Sender<Vec<f32>>,
}

struct QueueState {
    pending: VecDeque<Submission>,
    open: bool,
}

struct Inner {
    zoo: Arc<ShardedZoo>,
    state: Mutex<QueueState>,
    cv: Condvar,
    cfg: SchedulerConfig,
    /// Live [`ScheduledClassifier`] sessions — the coalescing heuristic's
    /// estimate of how many tenants could still contribute to a batch.
    active_sessions: AtomicUsize,
    /// The live metrics plane, when the deployment enabled one. Strictly
    /// write-only from this module (queue-depth gauge, dispatch counters,
    /// batch-size histogram): scheduling decisions never read a metric,
    /// so results are identical with metrics on or off.
    metrics: Option<Arc<ServerMetrics>>,
}

impl Inner {
    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// The running scheduler: owns the worker threads.
pub struct Scheduler {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

/// A cloneable handle for submitting work (one per tenant session).
#[derive(Clone)]
pub struct SchedulerHandle {
    inner: Arc<Inner>,
}

impl Scheduler {
    /// Starts `cfg.workers` worker threads over `zoo`, without metrics.
    pub fn start(zoo: Arc<ShardedZoo>, cfg: SchedulerConfig) -> Scheduler {
        Scheduler::start_with_metrics(zoo, cfg, None)
    }

    /// Starts the scheduler, publishing per-shard gauges and counters to
    /// `metrics` when one is given.
    pub fn start_with_metrics(
        zoo: Arc<ShardedZoo>,
        cfg: SchedulerConfig,
        metrics: Option<Arc<ServerMetrics>>,
    ) -> Scheduler {
        let cfg = SchedulerConfig {
            workers: cfg.workers.max(1),
            max_merge: cfg.max_merge.max(1),
            coalesce: cfg.coalesce,
        };
        let inner = Arc::new(Inner {
            zoo,
            state: Mutex::new(QueueState {
                pending: VecDeque::new(),
                open: true,
            }),
            cv: Condvar::new(),
            cfg: cfg.clone(),
            active_sessions: AtomicUsize::new(0),
            metrics,
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("sched-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn scheduler worker")
            })
            .collect();
        Scheduler { inner, workers }
    }

    /// A submission handle sharing this scheduler's queue.
    pub fn handle(&self) -> SchedulerHandle {
        SchedulerHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Closes the queue and joins the workers. Pending submissions are
    /// still served — only *new* submissions are refused after this.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        {
            let mut st = self.inner.lock();
            st.open = false;
        }
        self.inner.cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

impl SchedulerHandle {
    /// A [`Classifier`] routing all queries for `shard` through the
    /// scheduler. Trains the shard now (blocking) if it is cold, so the
    /// first query doesn't pay the training run.
    pub fn classifier(&self, shard: ShardKey) -> ScheduledClassifier {
        let num_classes = self
            .inner
            .zoo
            .shard(shard.0, shard.1)
            .classifier
            .num_classes();
        self.inner.active_sessions.fetch_add(1, Ordering::Relaxed);
        // Resolve the shard's metric handles once here, so the per-query
        // submit path below touches only their atomics.
        let shard_metrics = self.inner.metrics.as_ref().map(|m| m.shard(shard));
        ScheduledClassifier {
            inner: Arc::clone(&self.inner),
            shard,
            num_classes,
            shard_metrics,
        }
    }
}

/// Enqueues one submission and blocks on its reply. `shard_metrics` (the
/// submitter's cached handles) takes the queue-depth increment; the
/// worker that dispatches the batch takes the matching decrement.
fn submit_work(
    inner: &Inner,
    shard: ShardKey,
    work: Work,
    shard_metrics: Option<&ShardMetrics>,
) -> Vec<f32> {
    if let Some(sm) = shard_metrics {
        sm.queue_depth.inc();
    }
    let (tx, rx) = mpsc::channel();
    {
        let mut st = inner.lock();
        assert!(st.open, "submission after scheduler shutdown");
        st.pending.push_back(Submission {
            shard,
            work,
            reply: tx,
        });
    }
    inner.cv.notify_one();
    rx.recv()
        .expect("scheduler dropped a submission (worker died mid-job)")
}

/// A per-tenant [`Classifier`] whose queries run on the scheduler's
/// workers. Cheap to construct; safe to move into a session thread.
pub struct ScheduledClassifier {
    inner: Arc<Inner>,
    shard: ShardKey,
    num_classes: usize,
    shard_metrics: Option<Arc<ShardMetrics>>,
}

impl ScheduledClassifier {
    fn submit(&self, work: Work) -> Vec<f32> {
        submit_work(&self.inner, self.shard, work, self.shard_metrics.as_deref())
    }
}

impl Drop for ScheduledClassifier {
    fn drop(&mut self) {
        self.inner.active_sessions.fetch_sub(1, Ordering::Relaxed);
    }
}

impl Classifier for ScheduledClassifier {
    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn scores(&self, image: &Image) -> Vec<f32> {
        self.submit(Work::Full(image.clone()))
    }

    fn scores_into(&self, image: &Image, out: &mut Vec<f32>) {
        let scores = self.scores(image);
        out.clear();
        out.extend_from_slice(&scores);
    }

    fn scores_pixel_delta_into(
        &self,
        base: &Image,
        location: Location,
        pixel: Pixel,
        out: &mut Vec<f32>,
    ) {
        let scores = self.submit(Work::Delta {
            base: Arc::new(base.clone()),
            candidates: vec![(location, pixel)],
        });
        out.clear();
        out.extend_from_slice(&scores);
    }

    fn scores_pixel_delta_batch_into(
        &self,
        base: &Image,
        candidates: &[(Location, Pixel)],
        out: &mut Vec<f32>,
    ) {
        out.clear();
        if candidates.is_empty() {
            return;
        }
        let scores = self.submit(Work::Delta {
            base: Arc::new(base.clone()),
            candidates: candidates.to_vec(),
        });
        out.extend_from_slice(&scores);
    }
}

/// Pops one submission plus up to `max_merge - 1` further *delta*
/// submissions against the same shard. `Full` work is never merged (it
/// runs the plain forward path). Returns `None` when the queue is closed
/// and drained; the `bool` reports whether the batch held the coalescing
/// window open (metrics attribution only — never read back).
fn next_batch(inner: &Inner) -> Option<(Vec<Submission>, bool)> {
    let mut st = inner.lock();
    loop {
        if let Some(first) = st.pending.pop_front() {
            let mut batch = vec![first];
            let mut coalesce_waited = false;
            if matches!(batch[0].work, Work::Delta { .. }) {
                let shard = batch[0].shard;
                merge_pending(&mut st, &mut batch, shard, inner.cfg.max_merge);
                // Coalesce: while more sessions are live than this batch
                // covers, their next submissions are typically microseconds
                // away (each tenant is a closed loop around the oracle), so
                // holding the batch briefly buys merge depth. Bounded by
                // `cfg.coalesce`; a lone tenant never waits.
                if inner.cfg.coalesce > Duration::ZERO {
                    let deadline = Instant::now() + inner.cfg.coalesce;
                    while st.open
                        && batch.len() < inner.cfg.max_merge
                        && batch.len() < inner.active_sessions.load(Ordering::Relaxed)
                    {
                        let now = Instant::now();
                        if now >= deadline {
                            break;
                        }
                        coalesce_waited = true;
                        let (st2, _timeout) = inner
                            .cv
                            .wait_timeout(st, deadline - now)
                            .unwrap_or_else(|poisoned| poisoned.into_inner());
                        st = st2;
                        merge_pending(&mut st, &mut batch, shard, inner.cfg.max_merge);
                    }
                }
            }
            return Some((batch, coalesce_waited));
        }
        if !st.open {
            return None;
        }
        st = inner
            .cv
            .wait(st)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
    }
}

/// Moves every pending delta submission against `shard` into `batch`, up
/// to `max_merge` total.
fn merge_pending(
    st: &mut QueueState,
    batch: &mut Vec<Submission>,
    shard: ShardKey,
    max_merge: usize,
) {
    let mut i = 0;
    while i < st.pending.len() && batch.len() < max_merge {
        let mergeable =
            st.pending[i].shard == shard && matches!(st.pending[i].work, Work::Delta { .. });
        if mergeable {
            batch.push(st.pending.remove(i).expect("index checked"));
        } else {
            i += 1;
        }
    }
}

fn worker_loop(inner: &Inner) {
    // One owned session per shard this worker has served. The LRU is
    // sized to the merge width so one grouped call can never need more
    // resident bases than the cache holds. Beside each session: its
    // metric handles and the last cache-stat reading (handles cached so
    // the registry lock is paid once per shard, stats diffed so the
    // shared counters see only this batch's activity).
    let mut sessions: HashMap<ShardKey, OwnedZooSession> = HashMap::new();
    let mut shard_metrics: HashMap<ShardKey, (Arc<ShardMetrics>, SessionCacheStats)> =
        HashMap::new();
    let mut out: Vec<f32> = Vec::new();
    while let Some((batch, coalesce_waited)) = next_batch(inner) {
        let shard = batch[0].shard;
        let session = sessions.entry(shard).or_insert_with(|| {
            let model = inner.zoo.shard(shard.0, shard.1);
            model.classifier.owned_session(inner.cfg.max_merge)
        });
        let sm = inner.metrics.as_ref().map(|m| {
            &mut *shard_metrics
                .entry(shard)
                .or_insert_with(|| (m.shard(shard), SessionCacheStats::default()))
        });
        if let Some((sm, _)) = &sm {
            sm.queue_depth.add(-(batch.len() as i64));
            if coalesce_waited {
                sm.coalesce_waits.inc();
            }
        }
        match &batch[0].work {
            Work::Full(image) => {
                debug_assert_eq!(batch.len(), 1, "full forwards are never merged");
                if let Some((sm, _)) = &sm {
                    sm.full_calls.inc();
                }
                session.scores_into(image, &mut out);
                // A dead reply just means the tenant hung up mid-job.
                let _ = batch[0].reply.send(out.clone());
            }
            Work::Delta { .. } => {
                telemetry::count(telemetry::Counter::SchedGroupedCalls);
                telemetry::count_n(
                    telemetry::Counter::SchedGroupedSubmissions,
                    batch.len() as u64,
                );
                if let Some((sm, _)) = &sm {
                    if batch.len() > 1 {
                        sm.grouped_calls.inc();
                    } else {
                        sm.solo_calls.inc();
                    }
                    sm.merged_submissions.add(batch.len() as u64);
                    sm.batch_size.observe(batch.len() as u64);
                }
                let groups: Vec<DeltaGroup<'_>> = batch
                    .iter()
                    .map(|s| match &s.work {
                        Work::Delta { base, candidates } => DeltaGroup { base, candidates },
                        Work::Full(_) => unreachable!("merge only packs delta work"),
                    })
                    .collect();
                session.scores_pixel_delta_grouped_into(&groups, &mut out);
                let classes = session.num_classes();
                let mut offset = 0;
                for sub in &batch {
                    let n = match &sub.work {
                        Work::Delta { candidates, .. } => candidates.len() * classes,
                        Work::Full(_) => unreachable!("merge only packs delta work"),
                    };
                    let _ = sub.reply.send(out[offset..offset + n].to_vec());
                    offset += n;
                }
            }
        }
        if let Some((sm, prev)) = sm {
            let now = session.cache_stats();
            sm.lru_hits.add(now.hits - prev.hits);
            sm.lru_rebases.add(now.rebases - prev.rebases);
            sm.lru_colds.add(now.colds - prev.colds);
            *prev = now;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oppsla_core::oracle::BatchClassifier;
    use oppsla_eval::zoo::{Scale, ZooConfig};
    use oppsla_nn::models::Arch;

    fn fast_zoo() -> Arc<ShardedZoo> {
        Arc::new(ShardedZoo::new(
            ZooConfig {
                train_per_class: 8,
                epochs: Some(2),
                learning_rate: 2e-3,
                seed: 1,
                cache_dir: None,
            },
            2,
            9,
        ))
    }

    #[test]
    fn scheduled_scores_match_direct_sessions() {
        let zoo = fast_zoo();
        let shard = zoo.shard(Arch::Mlp, Scale::Cifar);
        let scheduler = Scheduler::start(Arc::clone(&zoo), SchedulerConfig::default());
        let clf = scheduler.handle().classifier((Arch::Mlp, Scale::Cifar));

        let direct = shard.classifier.session();
        let (image, _) = &shard.test_set[0];
        let mut want = Vec::new();
        let mut got = Vec::new();
        direct.scores_into(image, &mut want);
        clf.scores_into(image, &mut got);
        assert_eq!(got, want, "full forwards diverged");

        let candidates: Vec<(Location, Pixel)> = (0..5)
            .map(|i| {
                (
                    Location::new(i, 2 * i),
                    Pixel([0.1 * f32::from(i), 0.9, 0.2]),
                )
            })
            .collect();
        direct.scores_pixel_delta_batch_into(image, &candidates, &mut want);
        clf.scores_pixel_delta_batch_into(image, &candidates, &mut got);
        assert_eq!(got, want, "batched deltas diverged");

        let (loc, px) = candidates[3];
        direct.scores_pixel_delta_into(image, loc, px, &mut want);
        clf.scores_pixel_delta_into(image, loc, px, &mut got);
        assert_eq!(got, want, "single deltas diverged");
        scheduler.shutdown();
    }

    #[test]
    fn concurrent_tenants_get_their_own_answers() {
        let zoo = fast_zoo();
        let shard = zoo.shard(Arch::Mlp, Scale::Cifar);
        let scheduler = Scheduler::start(
            Arc::clone(&zoo),
            SchedulerConfig {
                workers: 2,
                max_merge: 4,
                ..SchedulerConfig::default()
            },
        );
        let handle = scheduler.handle();
        let threads: Vec<_> = (0..6u16)
            .map(|t| {
                let handle = handle.clone();
                let shard = Arc::clone(&shard);
                std::thread::spawn(move || {
                    let clf = handle.classifier((Arch::Mlp, Scale::Cifar));
                    let (image, _) = &shard.test_set[usize::from(t) % shard.test_set.len()];
                    let candidates: Vec<(Location, Pixel)> = (0..4)
                        .map(|i| {
                            (
                                Location::new(t + i, i),
                                Pixel([f32::from(i) * 0.2, 0.5, f32::from(t) * 0.1]),
                            )
                        })
                        .collect();
                    let mut got = Vec::new();
                    for _ in 0..10 {
                        clf.scores_pixel_delta_batch_into(image, &candidates, &mut got);
                    }
                    (t, candidates, got)
                })
            })
            .collect();
        for th in threads {
            let (t, candidates, got) = th.join().unwrap();
            let (image, _) = &shard.test_set[usize::from(t) % shard.test_set.len()];
            let isolated = shard.classifier.session();
            let mut want = Vec::new();
            isolated.scores_pixel_delta_batch_into(image, &candidates, &mut want);
            assert_eq!(got, want, "tenant {t} got someone else's scores");
        }
        scheduler.shutdown();
    }

    #[test]
    fn queue_depth_gauge_drains_to_zero_and_dispatches_balance() {
        let zoo = fast_zoo();
        let shard_key = (Arch::Mlp, Scale::Cifar);
        let shard = zoo.shard(shard_key.0, shard_key.1);
        let metrics = Arc::new(crate::metrics::ServerMetrics::new());
        let scheduler = Scheduler::start_with_metrics(
            Arc::clone(&zoo),
            SchedulerConfig {
                workers: 2,
                max_merge: 4,
                ..SchedulerConfig::default()
            },
            Some(Arc::clone(&metrics)),
        );
        let handle = scheduler.handle();
        const TENANTS: usize = 4;
        const CALLS: usize = 5;
        let threads: Vec<_> = (0..TENANTS)
            .map(|t| {
                let handle = handle.clone();
                let shard = Arc::clone(&shard);
                std::thread::spawn(move || {
                    let clf = handle.classifier((Arch::Mlp, Scale::Cifar));
                    let (image, _) = &shard.test_set[t % shard.test_set.len()];
                    let candidates = vec![(Location::new(1, 2), Pixel([0.3, 0.6, 0.9])); 3];
                    let mut got = Vec::new();
                    clf.scores_into(image, &mut got);
                    for _ in 0..CALLS {
                        clf.scores_pixel_delta_batch_into(image, &candidates, &mut got);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        scheduler.shutdown();
        let sm = metrics.shard(shard_key);
        assert_eq!(
            sm.queue_depth.get(),
            0,
            "every enqueued submission was dispatched"
        );
        assert_eq!(
            sm.merged_submissions.get(),
            (TENANTS * CALLS) as u64,
            "every delta submission is accounted in exactly one dispatch"
        );
        assert_eq!(sm.full_calls.get(), TENANTS as u64);
        assert_eq!(
            sm.batch_size.count(),
            sm.grouped_calls.get() + sm.solo_calls.get(),
            "each delta dispatch observes its size once"
        );
        assert_eq!(sm.batch_size.sum(), sm.merged_submissions.get());
    }
}
