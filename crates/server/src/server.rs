//! The daemon: TCP accept loop, per-connection framing, and admission
//! control.
//!
//! Each connection gets its own thread reading [`Request`] frames and
//! answering with exactly one [`Response`] frame per request. Attack
//! jobs pass through an admission gate (bounded active + bounded
//! waiting) before they may submit work to the shared scheduler, so a
//! burst of tenants degrades into queueing and then *explicit* rejection
//! — never into unbounded memory growth or a dead daemon.
//!
//! Compute never happens on connection threads: they block on the
//! scheduler's reply channels while the worker pool does the model work,
//! so a slow tenant costs one parked thread, not a core.

use crate::protocol::{read_frame, write_frame, FrameError, Request, Response};
use crate::scheduler::{Scheduler, SchedulerConfig, SchedulerHandle};
use crate::zoo::ShardedZoo;
use oppsla_eval::zoo::ZooConfig;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Scheduler sizing.
    pub scheduler: SchedulerConfig,
    /// Zoo training/caching configuration.
    pub zoo: ZooConfig,
    /// Attack test set size per class, per shard.
    pub test_per_class: usize,
    /// Attack test set seed.
    pub test_seed: u64,
    /// Jobs allowed to run concurrently; further jobs wait.
    pub max_active_jobs: usize,
    /// Jobs allowed to wait for a slot; further jobs are rejected with
    /// an error response.
    pub max_waiting_jobs: usize,
    /// Share a cross-tenant query memo per model shard (see
    /// [`crate::session::ShardMemos`]). Off by default: with a shared
    /// memo a job's query count and `log_fnv` digest depend on other
    /// tenants' history, so determinism-witness deployments must leave
    /// this disabled. Inert without the `query-memo` feature.
    pub memo: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            scheduler: SchedulerConfig::default(),
            zoo: ZooConfig::default(),
            test_per_class: 4,
            test_seed: 9,
            max_active_jobs: 16,
            max_waiting_jobs: 64,
            memo: false,
        }
    }
}

/// Bounded two-stage admission: `max_active` jobs run, `max_waiting`
/// wait, the rest are rejected immediately.
struct Admission {
    state: Mutex<AdmissionState>,
    cv: Condvar,
    max_active: usize,
    max_waiting: usize,
}

struct AdmissionState {
    active: usize,
    waiting: usize,
}

impl Admission {
    fn new(max_active: usize, max_waiting: usize) -> Self {
        Admission {
            state: Mutex::new(AdmissionState {
                active: 0,
                waiting: 0,
            }),
            cv: Condvar::new(),
            max_active: max_active.max(1),
            max_waiting,
        }
    }

    /// Blocks until a slot is free, or rejects when the waiting room is
    /// full. On `Ok` the caller holds a slot and must call
    /// [`Admission::release`].
    fn admit(&self) -> Result<(), String> {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if st.active < self.max_active {
            st.active += 1;
            return Ok(());
        }
        if st.waiting >= self.max_waiting {
            return Err(format!(
                "server at capacity: {} jobs active, {} waiting",
                st.active, st.waiting
            ));
        }
        st.waiting += 1;
        while st.active >= self.max_active {
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        st.waiting -= 1;
        st.active += 1;
        Ok(())
    }

    fn release(&self) {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        st.active = st.active.saturating_sub(1);
        drop(st);
        self.cv.notify_one();
    }
}

struct Shared {
    zoo: Arc<ShardedZoo>,
    handle: SchedulerHandle,
    admission: Admission,
    /// Per-shard cross-tenant memos; `None` when the deployment did not
    /// opt in.
    memos: Option<crate::session::ShardMemos>,
    /// Set by a `Shutdown` request or [`Server::request_shutdown`].
    shutdown: AtomicBool,
    /// Live connection threads (accept loop + drain accounting).
    connections: AtomicUsize,
}

/// A running attack daemon.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    scheduler: Option<Scheduler>,
}

impl Server {
    /// Binds `cfg.addr` and starts the accept loop and scheduler.
    ///
    /// # Errors
    ///
    /// Returns an error when the address cannot be bound.
    pub fn start(cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let zoo = Arc::new(ShardedZoo::new(
            cfg.zoo.clone(),
            cfg.test_per_class,
            cfg.test_seed,
        ));
        let scheduler = Scheduler::start(Arc::clone(&zoo), cfg.scheduler.clone());
        let shared = Arc::new(Shared {
            zoo,
            handle: scheduler.handle(),
            admission: Admission::new(cfg.max_active_jobs, cfg.max_waiting_jobs),
            memos: cfg.memo.then(crate::session::ShardMemos::default),
            shutdown: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("server-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .expect("spawn accept thread");
        Ok(Server {
            local_addr,
            shared,
            accept_thread: Some(accept_thread),
            scheduler: Some(scheduler),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The server's model zoo (shared with the scheduler): lets
    /// in-process harnesses (the load test's single-session baseline)
    /// reuse the resident shards instead of retraining them.
    pub fn zoo(&self) -> Arc<ShardedZoo> {
        Arc::clone(&self.shared.zoo)
    }

    /// True once a shutdown has been requested (by a client frame or
    /// [`Server::request_shutdown`]).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown from within the process (same effect as a
    /// client's `Shutdown` frame).
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Blocks until shutdown is requested, then drains: stops accepting,
    /// waits for connection threads to finish their in-flight requests,
    /// and joins the scheduler workers.
    pub fn wait(mut self) {
        while !self.shutdown_requested() {
            std::thread::sleep(Duration::from_millis(20));
        }
        self.drain();
    }

    fn drain(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        while self.shared.connections.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
        if let Some(s) = self.scheduler.take() {
            s.shutdown();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.drain();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Responses are small request-reply frames; waiting for
                // ACKs to batch them only adds delayed-ACK latency.
                stream.set_nodelay(true).ok();
                shared.connections.fetch_add(1, Ordering::SeqCst);
                let conn_shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name("server-conn".into())
                    .spawn(move || {
                        serve_connection(stream, &conn_shared);
                        conn_shared.connections.fetch_sub(1, Ordering::SeqCst);
                    });
                if spawned.is_err() {
                    // Thread exhaustion: shed the connection, keep serving.
                    shared.connections.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn serve_connection(mut stream: TcpStream, shared: &Shared) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            // Clean hang-up between frames.
            Ok(None) => return,
            Err(e @ (FrameError::TooLong(_) | FrameError::NotUtf8)) => {
                // The stream position is still frame-aligned only for
                // TooLong/NotUtf8 if we abandoned the payload — we did
                // not consume it, so answer once and close.
                let _ = respond(&mut stream, &Response::Error(e.to_string()));
                return;
            }
            Err(FrameError::Io(_)) => return,
        };
        let request: Request = match serde_json::from_str(&payload) {
            Ok(r) => r,
            Err(e) => {
                // JSON-level garbage leaves the framing intact: answer
                // and keep the connection.
                if respond(&mut stream, &Response::Error(format!("bad request: {e}"))).is_err() {
                    return;
                }
                continue;
            }
        };
        let response = match request {
            Request::Ping => Response::Pong,
            Request::Shutdown => {
                shared.shutdown.store(true, Ordering::SeqCst);
                let _ = respond(&mut stream, &Response::ShuttingDown);
                return;
            }
            Request::Attack(job) => match shared.admission.admit() {
                Err(reason) => Response::Error(reason),
                Ok(()) => {
                    let result = crate::session::run_job(
                        &shared.handle,
                        &shared.zoo,
                        &job,
                        shared.memos.as_ref(),
                    );
                    shared.admission.release();
                    match result {
                        Ok(outcome) => Response::Done(outcome),
                        Err(e) => Response::Error(e),
                    }
                }
            },
        };
        if respond(&mut stream, &response).is_err() {
            return;
        }
    }
}

fn respond(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    let json = serde_json::to_string(response)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    write_frame(stream, &json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_runs_then_queues_then_rejects() {
        let adm = Admission::new(1, 1);
        adm.admit().unwrap(); // active
        let adm = Arc::new(adm);
        let waiter = {
            let adm = Arc::clone(&adm);
            std::thread::spawn(move || adm.admit())
        };
        // Give the waiter time to enter the waiting room, then a third
        // job must be rejected outright.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let waiting = {
                let st = adm.state.lock().unwrap();
                st.waiting
            };
            if waiting == 1 {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "waiter never queued");
            std::thread::sleep(Duration::from_millis(1));
        }
        let err = adm.admit().unwrap_err();
        assert!(err.contains("capacity"), "{err}");
        adm.release();
        waiter.join().unwrap().unwrap();
        adm.release();
        assert!(adm.admit().is_ok(), "slots free again after releases");
    }
}
