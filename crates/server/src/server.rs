//! The daemon: TCP accept loop, per-connection framing, and admission
//! control.
//!
//! Each connection gets its own thread reading [`Request`] frames and
//! answering with exactly one [`Response`] frame per request. Attack
//! jobs pass through an admission gate (bounded active + bounded
//! waiting) before they may submit work to the shared scheduler, so a
//! burst of tenants degrades into queueing and then *explicit* rejection
//! — never into unbounded memory growth or a dead daemon.
//!
//! Compute never happens on connection threads: they block on the
//! scheduler's reply channels while the worker pool does the model work,
//! so a slow tenant costs one parked thread, not a core.

use crate::metrics::{ServerMetrics, TenantMetrics};
use crate::metrics_http::MetricsServer;
use crate::protocol::{
    read_frame, write_frame, FrameError, JobRequest, Request, Response, SlowJob, StatsReport,
};
use crate::scheduler::{Scheduler, SchedulerConfig, SchedulerHandle};
use crate::zoo::ShardedZoo;
use oppsla_eval::zoo::ZooConfig;
use oppsla_obs::metrics::Gauge;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Scheduler sizing.
    pub scheduler: SchedulerConfig,
    /// Zoo training/caching configuration.
    pub zoo: ZooConfig,
    /// Attack test set size per class, per shard.
    pub test_per_class: usize,
    /// Attack test set seed.
    pub test_seed: u64,
    /// Jobs allowed to run concurrently; further jobs wait.
    pub max_active_jobs: usize,
    /// Jobs allowed to wait for a slot; further jobs are rejected with
    /// an error response.
    pub max_waiting_jobs: usize,
    /// Share a cross-tenant query memo per model shard (see
    /// [`crate::session::ShardMemos`]). Off by default: with a shared
    /// memo a job's query count and `log_fnv` digest depend on other
    /// tenants' history, so determinism-witness deployments must leave
    /// this disabled. Inert without the `query-memo` feature.
    pub memo: bool,
    /// Run the live metrics plane (see [`crate::metrics`]). On by
    /// default; the plane is passive (write-only from the job path), so
    /// disabling it changes overhead only, never outcomes — CI A/B-tests
    /// that `log_fnv` digests match across this switch.
    pub metrics: bool,
    /// Bind address for the plaintext `/metrics` listener, or `None` for
    /// no HTTP exposition (the `Stats` frame still works). Ignored when
    /// `metrics` is off.
    pub metrics_addr: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            scheduler: SchedulerConfig::default(),
            zoo: ZooConfig::default(),
            test_per_class: 4,
            test_seed: 9,
            max_active_jobs: 16,
            max_waiting_jobs: 64,
            memo: false,
            metrics: true,
            metrics_addr: None,
        }
    }
}

/// Bounded two-stage admission: `max_active` jobs run, `max_waiting`
/// wait, the rest are rejected immediately.
struct Admission {
    state: Mutex<AdmissionState>,
    cv: Condvar,
    max_active: usize,
    max_waiting: usize,
    /// `(jobs_active, jobs_waiting)` gauges, mirrored on every state
    /// transition (under the admission mutex, so readers never see an
    /// inconsistent pair). `None` when metrics are disabled.
    gauges: Option<(Arc<Gauge>, Arc<Gauge>)>,
}

struct AdmissionState {
    active: usize,
    waiting: usize,
}

impl Admission {
    fn new(
        max_active: usize,
        max_waiting: usize,
        gauges: Option<(Arc<Gauge>, Arc<Gauge>)>,
    ) -> Self {
        Admission {
            state: Mutex::new(AdmissionState {
                active: 0,
                waiting: 0,
            }),
            cv: Condvar::new(),
            max_active: max_active.max(1),
            max_waiting,
            gauges,
        }
    }

    fn mirror(&self, st: &AdmissionState) {
        if let Some((active, waiting)) = &self.gauges {
            active.set(st.active as i64);
            waiting.set(st.waiting as i64);
        }
    }

    /// Blocks until a slot is free, or rejects when the waiting room is
    /// full. On `Ok` the caller holds a slot and must call
    /// [`Admission::release`]; the `bool` reports whether the job had to
    /// wait for it.
    fn admit(&self) -> Result<bool, String> {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if st.active < self.max_active {
            st.active += 1;
            self.mirror(&st);
            return Ok(false);
        }
        if st.waiting >= self.max_waiting {
            return Err(format!(
                "server at capacity: {} jobs active, {} waiting",
                st.active, st.waiting
            ));
        }
        st.waiting += 1;
        self.mirror(&st);
        while st.active >= self.max_active {
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        st.waiting -= 1;
        st.active += 1;
        self.mirror(&st);
        Ok(true)
    }

    fn release(&self) {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        st.active = st.active.saturating_sub(1);
        self.mirror(&st);
        drop(st);
        self.cv.notify_one();
    }
}

struct Shared {
    zoo: Arc<ShardedZoo>,
    handle: SchedulerHandle,
    admission: Admission,
    /// Per-shard cross-tenant memos; `None` when the deployment did not
    /// opt in.
    memos: Option<crate::session::ShardMemos>,
    /// The live metrics plane; `None` when the deployment disabled it.
    metrics: Option<Arc<ServerMetrics>>,
    /// Set by a `Shutdown` request or [`Server::request_shutdown`].
    shutdown: AtomicBool,
    /// Live connection threads (accept loop + drain accounting).
    connections: AtomicUsize,
}

/// A running attack daemon.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    scheduler: Option<Scheduler>,
    metrics_http: Option<MetricsServer>,
}

impl Server {
    /// Binds `cfg.addr` and starts the accept loop and scheduler.
    ///
    /// # Errors
    ///
    /// Returns an error when the address cannot be bound.
    pub fn start(cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let metrics = cfg.metrics.then(|| Arc::new(ServerMetrics::new()));
        let zoo = Arc::new(ShardedZoo::new(
            cfg.zoo.clone(),
            cfg.test_per_class,
            cfg.test_seed,
        ));
        if let Some(m) = &metrics {
            zoo.set_train_counter(Arc::clone(&m.zoo_shard_trains));
        }
        let metrics_http = match (&metrics, &cfg.metrics_addr) {
            (Some(m), Some(addr)) => Some(MetricsServer::start(addr, Arc::clone(m))?),
            _ => None,
        };
        let scheduler =
            Scheduler::start_with_metrics(Arc::clone(&zoo), cfg.scheduler.clone(), metrics.clone());
        let admission_gauges = metrics
            .as_ref()
            .map(|m| (Arc::clone(&m.jobs_active), Arc::clone(&m.jobs_waiting)));
        let shared = Arc::new(Shared {
            zoo,
            handle: scheduler.handle(),
            admission: Admission::new(cfg.max_active_jobs, cfg.max_waiting_jobs, admission_gauges),
            memos: cfg.memo.then(crate::session::ShardMemos::default),
            metrics,
            shutdown: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("server-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .expect("spawn accept thread");
        Ok(Server {
            local_addr,
            shared,
            accept_thread: Some(accept_thread),
            scheduler: Some(scheduler),
            metrics_http,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The server's model zoo (shared with the scheduler): lets
    /// in-process harnesses (the load test's single-session baseline)
    /// reuse the resident shards instead of retraining them.
    pub fn zoo(&self) -> Arc<ShardedZoo> {
        Arc::clone(&self.shared.zoo)
    }

    /// The live metrics plane, when the deployment enabled one. The
    /// daemon reads this on the shutdown path to flush a final snapshot.
    pub fn metrics(&self) -> Option<Arc<ServerMetrics>> {
        self.shared.metrics.clone()
    }

    /// The bound `/metrics` listener address (resolves port 0), when the
    /// deployment asked for HTTP exposition.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_http.as_ref().map(MetricsServer::local_addr)
    }

    /// True once a shutdown has been requested (by a client frame or
    /// [`Server::request_shutdown`]).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown from within the process (same effect as a
    /// client's `Shutdown` frame).
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Blocks until shutdown is requested, then drains: stops accepting,
    /// waits for connection threads to finish their in-flight requests,
    /// and joins the scheduler workers.
    pub fn wait(mut self) {
        while !self.shutdown_requested() {
            std::thread::sleep(Duration::from_millis(20));
        }
        self.drain();
    }

    fn drain(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        while self.shared.connections.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
        if let Some(s) = self.scheduler.take() {
            s.shutdown();
        }
        // The exposition listener outlives the job path on purpose: a
        // scraper can still read the final counters while connections
        // drain; it stops only once everything it reports is settled.
        if let Some(mut m) = self.metrics_http.take() {
            m.stop();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.drain();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Responses are small request-reply frames; waiting for
                // ACKs to batch them only adds delayed-ACK latency.
                stream.set_nodelay(true).ok();
                shared.connections.fetch_add(1, Ordering::SeqCst);
                if let Some(m) = &shared.metrics {
                    m.connections.inc();
                }
                let conn_shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name("server-conn".into())
                    .spawn(move || {
                        serve_connection(stream, &conn_shared);
                        if let Some(m) = &conn_shared.metrics {
                            m.connections.dec();
                        }
                        conn_shared.connections.fetch_sub(1, Ordering::SeqCst);
                    });
                if spawned.is_err() {
                    // Thread exhaustion: shed the connection, keep serving.
                    if let Some(m) = &shared.metrics {
                        m.connections.dec();
                    }
                    shared.connections.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn serve_connection(mut stream: TcpStream, shared: &Shared) {
    // One tenant per connection, labelled in accept order. Registered
    // lazily on the first attack job so Ping/Stats-only connections
    // (probes, `server_top`) never mint a tenant series.
    let mut tenant: Option<TenantMetrics> = None;
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            // Clean hang-up between frames.
            Ok(None) => return,
            Err(e @ (FrameError::TooLong(_) | FrameError::NotUtf8)) => {
                // The stream position is still frame-aligned only for
                // TooLong/NotUtf8 if we abandoned the payload — we did
                // not consume it, so answer once and close.
                let _ = respond(&mut stream, &Response::Error(e.to_string()));
                return;
            }
            Err(FrameError::Io(_)) => return,
        };
        let request: Request = match serde_json::from_str(&payload) {
            Ok(r) => r,
            Err(e) => {
                // JSON-level garbage leaves the framing intact: answer
                // and keep the connection.
                if respond(&mut stream, &Response::Error(format!("bad request: {e}"))).is_err() {
                    return;
                }
                continue;
            }
        };
        let response = match request {
            Request::Ping => Response::Pong,
            Request::Stats => Response::Stats(match &shared.metrics {
                Some(m) => m.snapshot(),
                // Metrics disabled: an empty report, not an error, so
                // pollers need no capability probe.
                None => StatsReport {
                    uptime_ms: 0,
                    metrics: Vec::new(),
                    slow_jobs: Vec::new(),
                },
            }),
            Request::Shutdown => {
                shared.shutdown.store(true, Ordering::SeqCst);
                let _ = respond(&mut stream, &Response::ShuttingDown);
                return;
            }
            Request::Attack(job) => {
                if tenant.is_none() {
                    tenant = shared.metrics.as_ref().map(|m| m.tenant());
                }
                serve_attack(shared, tenant.as_ref(), &job)
            }
        };
        if respond(&mut stream, &response).is_err() {
            return;
        }
    }
}

/// Admission, the job itself, and — purely passively — the metrics
/// plane's accounting around it: counters, the end-to-end latency
/// histogram, and the slow-request log. Every metrics touch is
/// write-only, after the corresponding decision was already made.
fn serve_attack(shared: &Shared, tenant: Option<&TenantMetrics>, job: &JobRequest) -> Response {
    match shared.admission.admit() {
        Err(reason) => {
            if let (Some(m), Some(t)) = (&shared.metrics, tenant) {
                m.jobs_rejected.inc();
                t.jobs_rejected.inc();
            }
            Response::Error(reason)
        }
        Ok(waited) => {
            let started = Instant::now();
            if let (Some(m), Some(t)) = (&shared.metrics, tenant) {
                m.jobs_admitted.inc();
                t.jobs_admitted.inc();
                if waited {
                    t.jobs_waited.inc();
                }
                t.budget_granted.add(job.budget);
            }
            let result =
                crate::session::run_job(&shared.handle, &shared.zoo, job, shared.memos.as_ref());
            shared.admission.release();
            let wall_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
            match result {
                Ok(done) => {
                    if let (Some(m), Some(t)) = (&shared.metrics, tenant) {
                        m.jobs_done.inc();
                        m.queries_total.add(done.outcome.queries);
                        m.memo_hits_total.add(done.outcome.memo_hits);
                        m.job_latency_us.observe(wall_us);
                        t.jobs_done.inc();
                        t.queries.add(done.outcome.queries);
                        t.memo_hits.add(done.outcome.memo_hits);
                        t.budget_unspent
                            .add(job.budget.saturating_sub(done.outcome.queries));
                        m.record_slow(SlowJob {
                            tenant: t.id.clone(),
                            arch: job.arch.clone(),
                            scale: job.scale.clone(),
                            status: done.outcome.status.clone(),
                            queries: done.outcome.queries,
                            full_queries: done.full_queries,
                            delta_queries: done.delta_queries,
                            memo_hits: done.outcome.memo_hits,
                            wall_us,
                            budget: job.budget,
                        });
                    }
                    Response::Done(done.outcome)
                }
                Err(e) => {
                    if let (Some(m), Some(t)) = (&shared.metrics, tenant) {
                        m.jobs_errored.inc();
                        t.jobs_errored.inc();
                    }
                    Response::Error(e)
                }
            }
        }
    }
}

fn respond(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    let json = serde_json::to_string(response)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    write_frame(stream, &json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_runs_then_queues_then_rejects() {
        let adm = Admission::new(1, 1, None);
        assert!(!adm.admit().unwrap(), "free slot: no wait"); // active
        let adm = Arc::new(adm);
        let waiter = {
            let adm = Arc::clone(&adm);
            std::thread::spawn(move || adm.admit())
        };
        // Give the waiter time to enter the waiting room, then a third
        // job must be rejected outright.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let waiting = {
                let st = adm.state.lock().unwrap();
                st.waiting
            };
            if waiting == 1 {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "waiter never queued");
            std::thread::sleep(Duration::from_millis(1));
        }
        let err = adm.admit().unwrap_err();
        assert!(err.contains("capacity"), "{err}");
        adm.release();
        assert!(
            waiter.join().unwrap().unwrap(),
            "the queued job reports that it waited"
        );
        adm.release();
        assert!(adm.admit().is_ok(), "slots free again after releases");
    }

    #[test]
    fn admission_mirrors_its_gauges() {
        let registry = oppsla_obs::metrics::Registry::new();
        let active = registry.gauge("jobs_active", &[]);
        let waiting = registry.gauge("jobs_waiting", &[]);
        let adm = Admission::new(2, 4, Some((Arc::clone(&active), Arc::clone(&waiting))));
        adm.admit().unwrap();
        adm.admit().unwrap();
        assert_eq!(active.get(), 2);
        assert_eq!(waiting.get(), 0);
        adm.release();
        assert_eq!(active.get(), 1);
        adm.release();
        assert_eq!(active.get(), 0, "gauge drains to zero with the jobs");
    }
}
