//! Per-job attack sessions: validation, budget enforcement, and the
//! deterministic outcome report.
//!
//! A session is one tenant's attack job end to end: resolve the request
//! against a model shard, wrap a scheduler-routed classifier in a
//! budget-enforcing [`Oracle`] with the query log enabled, run the
//! sketch-program attack, and fold the log into a digest the client (and
//! CI) can compare across scheduler configurations. All request
//! validation happens here, *before* any model work, and every failure
//! is a recoverable error string — never a panic that could take a
//! worker down.

use crate::protocol::{ImageSpec, JobOutcome, JobRequest};
use crate::scheduler::SchedulerHandle;
use crate::zoo::{ShardKey, ShardedZoo};
use oppsla_attacks::{Attack, AttackOutcome, SketchProgramAttack};
use oppsla_core::dsl::{parse_program, Program};
use oppsla_core::image::Image;
use oppsla_core::oracle::{Classifier, Oracle, QueryLogEntry, QueryMemo, DEFAULT_MEMO_CAPACITY};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Budgets above this are rejected at admission: one tenant must not be
/// able to park a worker on a near-infinite attack.
pub const MAX_JOB_BUDGET: u64 = 10_000_000;

/// FNV-1a 64 digest over a query log: seq, candidate, prediction and
/// per-query score hash of every counted query, in order. Two jobs saw
/// byte-identical oracle interactions iff their digests match.
pub fn digest_query_log(log: &[QueryLogEntry]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    fn mix(mut h: u64, bytes: &[u8]) -> u64 {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        h
    }
    let mut h = OFFSET;
    for e in log {
        h = mix(h, &e.seq.to_le_bytes());
        match e.pixel {
            None => h = mix(h, &[0]),
            Some((row, col, rgb)) => {
                h = mix(h, &[1]);
                h = mix(h, &row.to_le_bytes());
                h = mix(h, &col.to_le_bytes());
                for c in rgb {
                    h = mix(h, &c.to_le_bytes());
                }
            }
        }
        h = mix(h, &e.pred.to_le_bytes());
        h = mix(h, &e.score_hash.to_le_bytes());
    }
    h
}

/// Per-shard cross-tenant query memos, created lazily on first use.
///
/// Memo keys carry no classifier identity, so each shard — one trained
/// classifier — gets its own [`QueryMemo`] and banks are never shared
/// across shards. This is a deployment opt-in (default off): with a
/// shared memo a job's counted queries, and therefore its `log_fnv`
/// digest, depend on which candidates *other* tenants already paid for,
/// so the digest stops being a pure function of the request. Without
/// the `query-memo` feature the memos are inert stubs and every job
/// behaves exactly as if no registry existed.
pub struct ShardMemos {
    cap: usize,
    memos: Mutex<HashMap<ShardKey, Arc<QueryMemo>>>,
}

impl ShardMemos {
    /// A registry whose per-shard memos hold at most `cap` entries each.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        ShardMemos {
            cap: cap.max(1),
            memos: Mutex::new(HashMap::new()),
        }
    }

    /// The memo for `shard`, creating it on first request.
    pub fn memo(&self, shard: ShardKey) -> Arc<QueryMemo> {
        let mut memos = self
            .memos
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        Arc::clone(
            memos
                .entry(shard)
                .or_insert_with(|| Arc::new(QueryMemo::with_capacity(self.cap))),
        )
    }
}

impl Default for ShardMemos {
    fn default() -> Self {
        ShardMemos::new(DEFAULT_MEMO_CAPACITY)
    }
}

/// A validated job, ready to run.
struct ResolvedJob {
    image: Image,
    true_class: usize,
    program: Program,
    budget: u64,
    seed: u64,
}

fn resolve(zoo: &ShardedZoo, req: &JobRequest) -> Result<ResolvedJob, String> {
    let arch = crate::protocol::parse_arch(&req.arch)?;
    let scale = crate::protocol::parse_scale(&req.scale)?;
    if req.budget == 0 {
        return Err("budget must be at least 1".into());
    }
    if req.budget > MAX_JOB_BUDGET {
        return Err(format!(
            "budget {} exceeds the per-job limit of {MAX_JOB_BUDGET}",
            req.budget
        ));
    }
    let program = match &req.program {
        None => Program::paper_example(),
        Some(src) => parse_program(src).map_err(|e| format!("bad program: {e}"))?,
    };
    // Validation that needs the shard (class counts, image geometry)
    // happens after the cheap checks so garbage requests never trigger a
    // model load.
    let shard = zoo.shard(arch, scale);
    let num_classes = shard.classifier.num_classes();
    let (image, true_class) = match &req.image {
        ImageSpec {
            test_index: Some(i),
            inline: None,
        } => {
            let i = usize::try_from(*i).map_err(|_| "test_index out of range".to_string())?;
            let (image, label) = shard
                .test_set
                .get(i)
                .ok_or_else(|| {
                    format!(
                        "test_index {i} out of range (set has {})",
                        shard.test_set.len()
                    )
                })?
                .clone();
            (image, label)
        }
        ImageSpec {
            test_index: None,
            inline: Some(inline),
        } => {
            let spec = scale.input_spec();
            let (h, w) = (inline.height as usize, inline.width as usize);
            if h != spec.height || w != spec.width {
                return Err(format!(
                    "inline image is {h}x{w} but {} expects {}x{}",
                    req.scale, spec.height, spec.width
                ));
            }
            if inline.data.len() != h * w * 3 {
                return Err(format!(
                    "inline image data has {} values, expected {}",
                    inline.data.len(),
                    h * w * 3
                ));
            }
            if !inline
                .data
                .iter()
                .all(|v| v.is_finite() && (0.0..=1.0).contains(v))
            {
                return Err("inline image values must be finite and within [0, 1]".into());
            }
            let true_class = usize::try_from(inline.true_class)
                .map_err(|_| "true_class out of range".to_string())?;
            if true_class >= num_classes {
                return Err(format!(
                    "true_class {true_class} out of range for {num_classes} classes"
                ));
            }
            (Image::new(h, w, inline.data.clone()), true_class)
        }
        _ => {
            return Err("image must set exactly one of test_index or inline".into());
        }
    };
    Ok(ResolvedJob {
        image,
        true_class,
        program,
        budget: req.budget,
        seed: req.seed,
    })
}

/// A finished job: the wire-visible outcome plus route attribution the
/// observability plane uses (the outcome deliberately stays exactly the
/// client-facing report — the split lives beside it, not inside it).
#[derive(Debug, Clone)]
pub struct CompletedJob {
    /// The client-facing outcome, exactly as serialized on the wire.
    pub outcome: JobOutcome,
    /// Counted queries that took the full-image scoring route.
    pub full_queries: u64,
    /// Counted queries that took the sparse one-pixel delta route.
    pub delta_queries: u64,
}

/// Runs one attack job through the scheduler. When `memos` is set, the
/// job shares its shard's cross-tenant [`QueryMemo`] — candidates some
/// earlier job already paid for are served from the cache without
/// counting (reported via [`JobOutcome::memo_hits`]).
///
/// # Errors
///
/// Returns a human-readable message for every invalid request (unknown
/// model, bad image spec, bad program, out-of-range budget). Valid jobs
/// always produce an outcome — budget exhaustion is a `"failure"`
/// outcome, not an error.
pub fn run_job(
    scheduler: &SchedulerHandle,
    zoo: &ShardedZoo,
    req: &JobRequest,
    memos: Option<&ShardMemos>,
) -> Result<CompletedJob, String> {
    let job = resolve(zoo, req)?;
    let arch = crate::protocol::parse_arch(&req.arch).expect("validated");
    let scale = crate::protocol::parse_scale(&req.scale).expect("validated");
    let classifier = scheduler.classifier((arch, scale));
    let memo = memos.map(|m| m.memo((arch, scale)));
    let mut oracle = Oracle::with_budget(&classifier, job.budget);
    if let Some(memo) = &memo {
        oracle = oracle.with_memo(memo);
    }
    oracle.enable_query_log();
    let attack = SketchProgramAttack::new(job.program);
    let mut rng = ChaCha8Rng::seed_from_u64(job.seed);
    let outcome = attack.attack(&mut oracle, &job.image, job.true_class, &mut rng);
    let memo_hits = oracle.memo_hits();
    let log = oracle.take_query_log();
    let digest = digest_query_log(&log);
    let full_queries = log.iter().filter(|e| e.pixel.is_none()).count() as u64;
    let delta_queries = log.len() as u64 - full_queries;
    let (status, location, pixel) = match &outcome {
        AttackOutcome::Success {
            location, pixel, ..
        } => (
            "success",
            Some([u64::from(location.row), u64::from(location.col)]),
            Some(pixel.0),
        ),
        AttackOutcome::Failure { .. } => ("failure", None, None),
        AttackOutcome::AlreadyMisclassified { .. } => ("already_misclassified", None, None),
    };
    Ok(CompletedJob {
        outcome: JobOutcome {
            status: status.into(),
            queries: outcome.queries(),
            location,
            pixel,
            log_len: log.len() as u64,
            memo_hits,
            log_fnv: format!("{digest:016x}"),
        },
        full_queries,
        delta_queries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{Scheduler, SchedulerConfig};
    use oppsla_eval::zoo::ZooConfig;
    use std::sync::Arc;

    fn fast_zoo() -> Arc<ShardedZoo> {
        Arc::new(ShardedZoo::new(
            ZooConfig {
                train_per_class: 8,
                epochs: Some(2),
                learning_rate: 2e-3,
                seed: 1,
                cache_dir: None,
            },
            2,
            9,
        ))
    }

    fn mlp_request() -> JobRequest {
        JobRequest {
            arch: "mlp".into(),
            scale: "shapes32".into(),
            image: ImageSpec {
                test_index: Some(0),
                inline: None,
            },
            budget: 300,
            program: None,
            seed: 7,
        }
    }

    #[test]
    fn jobs_are_deterministic_given_the_request() {
        let zoo = fast_zoo();
        let scheduler = Scheduler::start(Arc::clone(&zoo), SchedulerConfig::default());
        let handle = scheduler.handle();
        let a = run_job(&handle, &zoo, &mlp_request(), None).unwrap();
        let b = run_job(&handle, &zoo, &mlp_request(), None).unwrap();
        assert_eq!(
            a.outcome, b.outcome,
            "same request, same scheduler => same outcome"
        );
        assert!(a.outcome.queries <= 300);
        assert_eq!(
            a.outcome.log_len, a.outcome.queries,
            "every counted query is logged"
        );
        assert_eq!(a.outcome.memo_hits, 0, "no memo registry, no hits");
        assert_eq!(
            a.full_queries + a.delta_queries,
            a.outcome.queries,
            "route attribution partitions the counted queries"
        );
        assert!(a.full_queries >= 1, "the baseline forward is a full query");
        scheduler.shutdown();
    }

    #[test]
    fn shard_memo_only_cheapens_repeat_jobs() {
        let zoo = fast_zoo();
        let scheduler = Scheduler::start(Arc::clone(&zoo), SchedulerConfig::default());
        let handle = scheduler.handle();
        let plain = run_job(&handle, &zoo, &mlp_request(), None)
            .unwrap()
            .outcome;
        let memos = ShardMemos::default();
        let cold = run_job(&handle, &zoo, &mlp_request(), Some(&memos))
            .unwrap()
            .outcome;
        // A cold memo changes nothing: every candidate is new, so the
        // job pays (and logs) exactly what an unmemoized job pays.
        assert_eq!(cold.status, plain.status);
        assert_eq!(cold.queries, plain.queries);
        assert_eq!(cold.log_fnv, plain.log_fnv);
        assert_eq!(cold.memo_hits, 0);
        let warm = run_job(&handle, &zoo, &mlp_request(), Some(&memos))
            .unwrap()
            .outcome;
        assert_eq!(warm.status, plain.status, "memo must not change outcomes");
        assert_eq!(warm.location, plain.location);
        assert_eq!(warm.pixel, plain.pixel);
        assert!(
            warm.queries <= plain.queries,
            "memo can only reduce queries"
        );
        assert_eq!(warm.log_len, warm.queries, "hits are never logged");
        #[cfg(feature = "query-memo")]
        {
            assert!(warm.memo_hits > 0, "repeat job must hit the warm memo");
            assert!(warm.queries < plain.queries);
        }
        #[cfg(not(feature = "query-memo"))]
        assert_eq!(warm, plain, "stubbed memo is inert");
        scheduler.shutdown();
    }

    #[test]
    fn invalid_requests_are_rejected_before_model_work() {
        let zoo = fast_zoo();
        let scheduler = Scheduler::start(Arc::clone(&zoo), SchedulerConfig::default());
        let handle = scheduler.handle();
        let cases: Vec<(JobRequest, &str)> = vec![
            (
                JobRequest {
                    arch: "vgg".into(),
                    ..mlp_request()
                },
                "unknown arch",
            ),
            (
                JobRequest {
                    scale: "cifar".into(),
                    ..mlp_request()
                },
                "unknown scale",
            ),
            (
                JobRequest {
                    budget: 0,
                    ..mlp_request()
                },
                "budget",
            ),
            (
                JobRequest {
                    budget: MAX_JOB_BUDGET + 1,
                    ..mlp_request()
                },
                "per-job limit",
            ),
            (
                JobRequest {
                    program: Some("if garbage(".into()),
                    ..mlp_request()
                },
                "bad program",
            ),
            (
                JobRequest {
                    image: ImageSpec {
                        test_index: Some(10_000),
                        inline: None,
                    },
                    ..mlp_request()
                },
                "out of range",
            ),
            (
                JobRequest {
                    image: ImageSpec {
                        test_index: None,
                        inline: None,
                    },
                    ..mlp_request()
                },
                "exactly one",
            ),
        ];
        for (req, want) in cases {
            let err = run_job(&handle, &zoo, &req, None).unwrap_err();
            assert!(err.contains(want), "{req:?}: {err:?} missing {want:?}");
        }
        scheduler.shutdown();
    }

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let a = QueryLogEntry {
            seq: 1,
            pixel: None,
            pred: 2,
            score_hash: 0xdead,
        };
        let b = QueryLogEntry {
            seq: 2,
            pixel: Some((3, 4, [1, 2, 3])),
            pred: 0,
            score_hash: 0xbeef,
        };
        assert_ne!(digest_query_log(&[a, b]), digest_query_log(&[b, a]));
        assert_ne!(digest_query_log(&[a]), digest_query_log(&[b]));
        assert_eq!(digest_query_log(&[a, b]), digest_query_log(&[a, b]));
    }
}
