//! Rendering for `server_top`: a refreshing console view over `Stats`
//! snapshots.
//!
//! The binary is a thin poll loop; everything that decides what the
//! screen says lives here as pure functions over [`StatsReport`] values,
//! so the layout is unit-testable without a server. Rates (queries/s)
//! come from differencing two consecutive snapshots — the server only
//! ever exports monotone counters, never rates.

use crate::protocol::{StatsMetric, StatsReport};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Splits a flattened metric key into `(name, label_value)` when it
/// carries exactly one label, e.g.
/// `tenant_queries{tenant="t3"}` → `("tenant_queries", "t3")`.
fn split_labelled(key: &str) -> Option<(&str, &str)> {
    let open = key.find('{')?;
    let eq = key[open..].find("=\"")? + open;
    let close = key.rfind("\"}")?;
    if close <= eq + 2 {
        return None;
    }
    Some((&key[..open], &key[eq + 2..close]))
}

/// The value of an unlabelled sample, or 0 when absent.
fn value(report: &StatsReport, key: &str) -> f64 {
    report
        .metrics
        .iter()
        .find(|s| s.key == key)
        .map_or(0.0, |s| s.value)
}

/// Collects `name{label="<id>"} -> value` rows into per-id maps:
/// `id -> (name -> value)`, for every sample whose single label has key
/// `label_key`.
fn rows_by_label(report: &StatsReport, label_key: &str) -> BTreeMap<String, BTreeMap<String, f64>> {
    let prefix = format!("{{{label_key}=\"");
    let mut rows: BTreeMap<String, BTreeMap<String, f64>> = BTreeMap::new();
    for StatsMetric { key, value } in &report.metrics {
        let Some((name, id)) = split_labelled(key) else {
            continue;
        };
        if !key[name.len()..].starts_with(&prefix) {
            continue;
        }
        rows.entry(id.to_string())
            .or_default()
            .insert(name.to_string(), *value);
    }
    rows
}

/// Tenant ids sort numerically (`t2` before `t10`), `overflow` last.
fn tenant_order(id: &str) -> (u64, String) {
    match id.strip_prefix('t').and_then(|n| n.parse::<u64>().ok()) {
        Some(n) => (n, String::new()),
        None => (u64::MAX, id.to_string()),
    }
}

fn fmt_duration_ms(ms: u64) -> String {
    if ms >= 60_000 {
        format!("{}m{:02}s", ms / 60_000, (ms % 60_000) / 1000)
    } else {
        format!("{:.1}s", ms as f64 / 1000.0)
    }
}

/// Queries-per-second between two snapshots, when both exist and time
/// actually advanced.
fn rate(report: &StatsReport, prev: Option<&StatsReport>, key: &str) -> Option<f64> {
    let prev = prev?;
    let dt_ms = report.uptime_ms.checked_sub(prev.uptime_ms)?;
    if dt_ms == 0 {
        return None;
    }
    let delta = value(report, key) - value(prev, key);
    Some(delta * 1000.0 / dt_ms as f64)
}

/// Renders one full console frame: header, per-tenant table, per-shard
/// table, and the slow-request log. `prev` (the previous poll's report)
/// adds rate columns when available.
#[must_use]
pub fn render(report: &StatsReport, prev: Option<&StatsReport>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "oppsla server_top  uptime {}  conns {}  jobs {} done / {} err / {} active / {} waiting",
        fmt_duration_ms(report.uptime_ms),
        value(report, "connections"),
        value(report, "jobs_done"),
        value(report, "jobs_errored"),
        value(report, "jobs_active"),
        value(report, "jobs_waiting"),
    );
    let qps = match rate(report, prev, "queries_total") {
        Some(r) => format!("  ({r:.0}/s)"),
        None => String::new(),
    };
    let _ = writeln!(
        out,
        "queries {}{}  memo hits {}  job p50/p99 {}us/{}us  shard trains {}",
        value(report, "queries_total"),
        qps,
        value(report, "memo_hits_total"),
        value(report, "job_latency_us_p50"),
        value(report, "job_latency_us_p99"),
        value(report, "zoo_shard_trains"),
    );

    let tenants = rows_by_label(report, "tenant");
    if !tenants.is_empty() {
        let _ = writeln!(
            out,
            "\n{:<10} {:>6} {:>5} {:>5} {:>5} {:>10} {:>8} {:>12}",
            "TENANT", "DONE", "ERR", "REJ", "WAIT", "QUERIES", "MEMO", "BUDGET-LEFT"
        );
        let mut ids: Vec<&String> = tenants.keys().collect();
        ids.sort_by_key(|id| tenant_order(id));
        for id in ids {
            let row = &tenants[id];
            let get = |name: &str| row.get(name).copied().unwrap_or(0.0);
            let _ = writeln!(
                out,
                "{:<10} {:>6} {:>5} {:>5} {:>5} {:>10} {:>8} {:>12}",
                id,
                get("tenant_jobs_done"),
                get("tenant_jobs_errored"),
                get("tenant_jobs_rejected"),
                get("tenant_jobs_waited"),
                get("tenant_queries"),
                get("tenant_memo_hits"),
                get("tenant_budget_unspent"),
            );
        }
    }

    let shards = rows_by_label(report, "shard");
    if !shards.is_empty() {
        let _ = writeln!(
            out,
            "\n{:<24} {:>6} {:>8} {:>6} {:>6} {:>8} {:>6} {:>8} {:>8} {:>6}",
            "SHARD",
            "DEPTH",
            "GROUPED",
            "SOLO",
            "FULL",
            "BATCHp90",
            "WAITS",
            "LRU-HIT",
            "REBASE",
            "COLD"
        );
        for (id, row) in &shards {
            let get = |name: &str| row.get(name).copied().unwrap_or(0.0);
            let _ = writeln!(
                out,
                "{:<24} {:>6} {:>8} {:>6} {:>6} {:>8} {:>6} {:>8} {:>8} {:>6}",
                id,
                get("sched_queue_depth"),
                get("sched_grouped_calls"),
                get("sched_solo_calls"),
                get("sched_full_calls"),
                get("sched_batch_size_p90"),
                get("sched_coalesce_waits"),
                get("session_lru_hits"),
                get("session_lru_rebases"),
                get("session_lru_colds"),
            );
        }
    }

    if !report.slow_jobs.is_empty() {
        let _ = writeln!(
            out,
            "\nslowest jobs\n{:<10} {:<22} {:<22} {:>10} {:>12} {:>6} {:>10} {:>8}",
            "TENANT", "SHARD", "STATUS", "QUERIES", "FULL/DELTA", "MEMO", "WALL", "BUDGET"
        );
        for j in &report.slow_jobs {
            let _ = writeln!(
                out,
                "{:<10} {:<22} {:<22} {:>10} {:>12} {:>6} {:>9}us {:>8}",
                j.tenant,
                format!("{}/{}", j.arch, j.scale),
                j.status,
                j.queries,
                format!("{}/{}", j.full_queries, j.delta_queries),
                j.memo_hits,
                j.wall_us,
                j.budget,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::SlowJob;

    fn sample(key: &str, value: f64) -> StatsMetric {
        StatsMetric {
            key: key.into(),
            value,
        }
    }

    fn report() -> StatsReport {
        StatsReport {
            uptime_ms: 2500,
            metrics: vec![
                sample("connections", 3.0),
                sample("jobs_done", 12.0),
                sample("queries_total", 5000.0),
                sample("tenant_jobs_done{tenant=\"t0\"}", 5.0),
                sample("tenant_queries{tenant=\"t0\"}", 2100.0),
                sample("tenant_jobs_done{tenant=\"t10\"}", 3.0),
                sample("tenant_jobs_done{tenant=\"t2\"}", 4.0),
                sample("tenant_jobs_done{tenant=\"overflow\"}", 1.0),
                sample("sched_queue_depth{shard=\"mlp/shapes32\"}", 2.0),
                sample("sched_grouped_calls{shard=\"mlp/shapes32\"}", 40.0),
            ],
            slow_jobs: vec![SlowJob {
                tenant: "t2".into(),
                arch: "mlp".into(),
                scale: "shapes32".into(),
                status: "success".into(),
                queries: 321,
                full_queries: 1,
                delta_queries: 320,
                memo_hits: 0,
                wall_us: 88_000,
                budget: 600,
            }],
        }
    }

    #[test]
    fn splits_single_labelled_keys() {
        assert_eq!(
            split_labelled("tenant_queries{tenant=\"t3\"}"),
            Some(("tenant_queries", "t3"))
        );
        assert_eq!(split_labelled("queries_total"), None);
    }

    #[test]
    fn renders_tenants_in_numeric_order_with_overflow_last() {
        let page = render(&report(), None);
        let t0 = page.find("t0 ").expect("t0 row");
        let t2 = page.find("t2 ").expect("t2 row");
        let t10 = page.find("t10 ").expect("t10 row");
        let over = page.find("overflow").expect("overflow row");
        assert!(t0 < t2 && t2 < t10 && t10 < over, "{page}");
    }

    #[test]
    fn renders_header_shards_and_slow_log() {
        let page = render(&report(), None);
        assert!(page.contains("uptime 2.5s"), "{page}");
        assert!(page.contains("queries 5000"), "{page}");
        assert!(page.contains("mlp/shapes32"), "{page}");
        assert!(page.contains("slowest jobs"), "{page}");
        assert!(page.contains("1/320"), "full/delta split shown: {page}");
    }

    #[test]
    fn rates_come_from_differencing_snapshots() {
        let mut prev = report();
        prev.uptime_ms = 1500;
        prev.metrics = vec![sample("queries_total", 3000.0)];
        let page = render(&report(), Some(&prev));
        // 2000 queries over 1000 ms = 2000/s.
        assert!(page.contains("(2000/s)"), "{page}");
        let no_prev = render(&report(), None);
        assert!(!no_prev.contains("/s)"), "no rate without a baseline");
    }
}
