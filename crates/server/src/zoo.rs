//! The server's sharded model zoo.
//!
//! Each *(arch, scale)* pair is one shard: a compiled [`ZooClassifier`]
//! plus the deterministic attack test set jobs index into. Shards are
//! trained (or loaded from the weight cache) lazily on first use, behind
//! a per-shard lock so two tenants requesting the same cold model block
//! on one training run instead of racing two — while requests for
//! *different* shards proceed in parallel (the global map lock is only
//! held to look up or insert the per-shard cell, never during training).
//!
//! The per-session `BaseActivations` LRU lives below this layer, in the
//! scheduler workers' [`ZooClassifier::owned_session`] handles: the zoo
//! shares immutable weights, the workers own the mutable caches.

use oppsla_core::image::Image;
use oppsla_eval::zoo::{attack_test_set, train_or_load, Scale, ZooClassifier, ZooConfig};
use oppsla_nn::models::Arch;
use oppsla_obs::metrics::Counter;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Identifies one model shard.
pub type ShardKey = (Arch, Scale);

/// One resident model: shared compiled weights plus its attack test set.
pub struct ModelShard {
    /// The compiled classifier; scheduler workers derive owned sessions.
    pub classifier: Arc<ZooClassifier>,
    /// Deterministic labelled attack images, indexed by job requests.
    pub test_set: Arc<Vec<(Image, usize)>>,
    /// Held-out accuracy of the shard's model (reported, not enforced).
    pub test_accuracy: f32,
}

/// Lazily trained, concurrently shared model shards.
pub struct ShardedZoo {
    config: ZooConfig,
    test_per_class: usize,
    test_seed: u64,
    shards: Mutex<HashMap<ShardKey, Arc<OnceLock<Arc<ModelShard>>>>>,
    /// Bumped each time a train-once latch fires (a cold shard is
    /// trained or loaded). Write-only observability; `None` when the
    /// deployment runs without metrics.
    train_counter: Mutex<Option<Arc<Counter>>>,
}

impl ShardedZoo {
    /// Creates an empty zoo; shards train on first request.
    /// `test_per_class` sizes each shard's attack test set.
    pub fn new(config: ZooConfig, test_per_class: usize, test_seed: u64) -> Self {
        ShardedZoo {
            config,
            test_per_class,
            test_seed,
            shards: Mutex::new(HashMap::new()),
            train_counter: Mutex::new(None),
        }
    }

    /// Publishes train-once latch firings to `counter` from now on.
    pub fn set_train_counter(&self, counter: Arc<Counter>) {
        *self
            .train_counter
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(counter);
    }

    /// The shard for `(arch, scale)`, training it on first use. Blocks
    /// only callers of the *same* cold shard; other shards stay
    /// available while one trains.
    pub fn shard(&self, arch: Arch, scale: Scale) -> Arc<ModelShard> {
        let cell = {
            let mut map = self
                .shards
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            Arc::clone(map.entry((arch, scale)).or_default())
        };
        Arc::clone(cell.get_or_init(|| {
            if let Some(counter) = &*self
                .train_counter
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
            {
                counter.inc();
            }
            let model = train_or_load(arch, scale, &self.config);
            let test_set = attack_test_set(scale, self.test_per_class, self.test_seed);
            Arc::new(ModelShard {
                classifier: Arc::new(model.classifier()),
                test_set: Arc::new(test_set),
                test_accuracy: model.test_accuracy,
            })
        }))
    }

    /// The shards resident right now, as keys (for reporting).
    pub fn resident(&self) -> Vec<ShardKey> {
        let map = self
            .shards
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let mut keys: Vec<ShardKey> = map
            .iter()
            .filter(|(_, cell)| cell.get().is_some())
            .map(|(&k, _)| k)
            .collect();
        keys.sort_by_key(|(a, s)| (a.id(), s.id()));
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> ZooConfig {
        ZooConfig {
            train_per_class: 8,
            epochs: Some(2),
            learning_rate: 2e-3,
            seed: 1,
            cache_dir: None,
        }
    }

    #[test]
    fn shards_are_shared_not_retrained() {
        let zoo = ShardedZoo::new(fast_config(), 2, 9);
        let a = zoo.shard(Arch::Mlp, Scale::Cifar);
        let b = zoo.shard(Arch::Mlp, Scale::Cifar);
        assert!(
            Arc::ptr_eq(&a, &b),
            "the second request must reuse the resident shard"
        );
        assert_eq!(a.test_set.len(), 2 * 10, "2 per class, 10 classes");
        assert_eq!(zoo.resident(), vec![(Arch::Mlp, Scale::Cifar)]);
    }

    #[test]
    fn concurrent_cold_requests_train_once() {
        let zoo = Arc::new(ShardedZoo::new(fast_config(), 1, 9));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let zoo = Arc::clone(&zoo);
                std::thread::spawn(move || zoo.shard(Arch::Mlp, Scale::Cifar))
            })
            .collect();
        let shards: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(shards.windows(2).all(|w| Arc::ptr_eq(&w[0], &w[1])));
    }
}
