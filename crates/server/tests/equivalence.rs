//! The scheduler equivalence guarantee, asserted byte-for-byte: N
//! tenants running concurrently through the shared cross-session batch
//! scheduler observe *exactly* the oracle interaction stream they would
//! have observed in private, isolated, sequential sessions — same
//! outcomes, same query counts, and identical per-query logs (candidate,
//! prediction, and score-bit hashes), at 1 and at 4 worker threads.

use oppsla_attacks::{Attack, AttackOutcome, SketchProgramAttack};
use oppsla_core::dsl::Program;
use oppsla_core::oracle::{BatchClassifier, Classifier, Oracle, QueryLogEntry};
use oppsla_eval::zoo::{Scale, ZooConfig};
use oppsla_nn::models::Arch;
use oppsla_server::scheduler::{Scheduler, SchedulerConfig};
use oppsla_server::zoo::{ShardKey, ShardedZoo};
use std::sync::Arc;

const BUDGET: u64 = 150;

fn fast_zoo() -> Arc<ShardedZoo> {
    Arc::new(ShardedZoo::new(
        ZooConfig {
            train_per_class: 8,
            epochs: Some(2),
            learning_rate: 2e-3,
            seed: 1,
            cache_dir: None,
        },
        3,
        9,
    ))
}

struct Tenant {
    shard: ShardKey,
    image_index: usize,
    seed: u64,
}

struct RunRecord {
    outcome: AttackOutcome,
    queries: u64,
    log: Vec<QueryLogEntry>,
}

fn run_with(classifier: &dyn Classifier, zoo: &ShardedZoo, tenant: &Tenant) -> RunRecord {
    let shard = zoo.shard(tenant.shard.0, tenant.shard.1);
    let (image, true_class) = shard.test_set[tenant.image_index].clone();
    let mut oracle = Oracle::with_budget(classifier, BUDGET);
    oracle.enable_query_log();
    let attack = SketchProgramAttack::new(Program::paper_example());
    let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(tenant.seed);
    let outcome = attack.attack(&mut oracle, &image, true_class, &mut rng);
    RunRecord {
        queries: outcome.queries(),
        outcome,
        log: oracle.take_query_log(),
    }
}

fn assert_shared_matches_isolated(tenants: &[Tenant], workers: usize) {
    let zoo = fast_zoo();

    // Reference: each tenant in a private sequential session.
    let isolated: Vec<RunRecord> = tenants
        .iter()
        .map(|t| {
            let shard = zoo.shard(t.shard.0, t.shard.1);
            let session = shard.classifier.session();
            run_with(&*session, &zoo, t)
        })
        .collect();

    // Shared: all tenants concurrently through one scheduler.
    let scheduler = Scheduler::start(
        Arc::clone(&zoo),
        SchedulerConfig {
            workers,
            max_merge: 8,
            ..SchedulerConfig::default()
        },
    );
    let handle = scheduler.handle();
    let threads: Vec<_> = tenants
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let handle = handle.clone();
            let zoo = Arc::clone(&zoo);
            let tenant = Tenant {
                shard: t.shard,
                image_index: t.image_index,
                seed: t.seed,
            };
            std::thread::spawn(move || {
                let classifier = handle.classifier(tenant.shard);
                (i, run_with(&classifier, &zoo, &tenant))
            })
        })
        .collect();
    let mut shared: Vec<Option<RunRecord>> = tenants.iter().map(|_| None).collect();
    for th in threads {
        let (i, rec) = th.join().expect("tenant thread");
        shared[i] = Some(rec);
    }
    scheduler.shutdown();

    for (i, (want, got)) in isolated.iter().zip(&shared).enumerate() {
        let got = got.as_ref().expect("every tenant ran");
        assert_eq!(
            got.outcome, want.outcome,
            "tenant {i} outcome diverged at {workers} workers"
        );
        assert_eq!(
            got.queries, want.queries,
            "tenant {i} query count diverged at {workers} workers"
        );
        assert_eq!(
            got.log, want.log,
            "tenant {i} query log diverged at {workers} workers"
        );
        assert_eq!(
            got.log.len() as u64,
            got.queries,
            "tenant {i}: every counted query must be logged"
        );
    }
}

fn mlp_tenants(n: usize) -> Vec<Tenant> {
    (0..n)
        .map(|i| Tenant {
            shard: (Arch::Mlp, Scale::Cifar),
            image_index: i % 6,
            seed: 40 + i as u64,
        })
        .collect()
}

#[test]
fn shared_scheduler_is_bit_identical_to_isolated_sessions_single_worker() {
    assert_shared_matches_isolated(&mlp_tenants(5), 1);
}

#[test]
fn shared_scheduler_is_bit_identical_to_isolated_sessions_four_workers() {
    assert_shared_matches_isolated(&mlp_tenants(5), 4);
}

#[test]
fn cross_shard_tenants_stay_bit_identical() {
    // Two model shards in flight at once: packing happens per shard, and
    // neither shard's tenants may observe the other's existence.
    let mut tenants = mlp_tenants(3);
    tenants.push(Tenant {
        shard: (Arch::VggSmall, Scale::Cifar),
        image_index: 1,
        seed: 77,
    });
    tenants.push(Tenant {
        shard: (Arch::VggSmall, Scale::Cifar),
        image_index: 2,
        seed: 78,
    });
    assert_shared_matches_isolated(&tenants, 4);
}
