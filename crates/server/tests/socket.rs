//! End-to-end daemon tests over real TCP sockets: the happy path, every
//! rejection path a misbehaving client can trigger, and the shutdown
//! handshake. One server instance is shared across the whole file so the
//! (fast) zoo trains once.

use oppsla_server::protocol::{
    read_frame, write_frame, ImageSpec, InlineImage, JobRequest, Request, Response,
};
use oppsla_server::server::{Server, ServerConfig};
use std::net::TcpStream;
use std::sync::{Mutex, OnceLock};

fn server() -> &'static Mutex<Server> {
    static SERVER: OnceLock<Mutex<Server>> = OnceLock::new();
    SERVER.get_or_init(|| {
        let cfg = ServerConfig {
            zoo: oppsla_eval::zoo::ZooConfig {
                train_per_class: 8,
                epochs: Some(2),
                learning_rate: 2e-3,
                seed: 1,
                cache_dir: None,
            },
            test_per_class: 3,
            ..Default::default()
        };
        Mutex::new(Server::start(cfg).expect("bind port 0"))
    })
}

fn connect() -> TcpStream {
    let addr = server().lock().unwrap().local_addr();
    TcpStream::connect(addr).expect("connect to daemon")
}

fn roundtrip(stream: &mut TcpStream, request: &Request) -> Response {
    let json = serde_json::to_string(request).expect("serialize request");
    write_frame(stream, &json).expect("send frame");
    let payload = read_frame(stream)
        .expect("read response frame")
        .expect("server closed before responding");
    serde_json::from_str(&payload).expect("parse response")
}

fn attack_request(budget: u64, seed: u64) -> Request {
    Request::Attack(JobRequest {
        arch: "mlp".into(),
        scale: "shapes32".into(),
        image: ImageSpec {
            test_index: Some(0),
            inline: None,
        },
        budget,
        program: None,
        seed,
    })
}

#[test]
fn ping_pong() {
    let mut s = connect();
    assert_eq!(roundtrip(&mut s, &Request::Ping), Response::Pong);
}

#[test]
fn attack_job_end_to_end_and_deterministic() {
    let mut s = connect();
    let req = attack_request(200, 7);
    let a = roundtrip(&mut s, &req);
    // Same request again on the same connection: byte-identical outcome.
    let b = roundtrip(&mut s, &req);
    assert_eq!(a, b, "served jobs must be deterministic in the request");
    match a {
        Response::Done(out) => {
            assert!(
                out.status == "success"
                    || out.status == "failure"
                    || out.status == "already_misclassified",
                "unexpected status {:?}",
                out.status
            );
            assert!(out.queries <= 200, "budget overrun: {}", out.queries);
            assert_eq!(out.log_len, out.queries, "every query must be logged");
            assert_eq!(out.log_fnv.len(), 16, "digest is 16 hex digits");
        }
        other => panic!("expected Done, got {other:?}"),
    }
}

#[test]
fn stats_frame_reflects_served_jobs_and_metrics_scrape_agrees() {
    // A dedicated server so counters aren't shared with other tests.
    let cfg = ServerConfig {
        zoo: oppsla_eval::zoo::ZooConfig {
            train_per_class: 8,
            epochs: Some(2),
            learning_rate: 2e-3,
            seed: 1,
            cache_dir: None,
        },
        test_per_class: 3,
        metrics_addr: Some("127.0.0.1:0".into()),
        ..Default::default()
    };
    let server = Server::start(cfg).expect("bind");
    let addr = server.local_addr();
    let mut s = TcpStream::connect(addr).expect("connect");
    let req = attack_request(150, 11);
    let served = match roundtrip(&mut s, &req) {
        Response::Done(out) => out,
        other => panic!("expected Done, got {other:?}"),
    };
    let report = match roundtrip(&mut s, &Request::Stats) {
        Response::Stats(r) => r,
        other => panic!("expected Stats, got {other:?}"),
    };
    let value = |key: &str| {
        report
            .metrics
            .iter()
            .find(|m| m.key == key)
            .unwrap_or_else(|| panic!("missing {key} in {:?}", report.metrics))
            .value
    };
    assert_eq!(value("jobs_done") as u64, 1);
    assert_eq!(value("queries_total") as u64, served.queries);
    assert_eq!(value("zoo_shard_trains") as u64, 1, "one cold shard");
    assert_eq!(
        value("tenant_jobs_done{tenant=\"t0\"}") as u64,
        1,
        "first attacking connection is tenant t0"
    );
    assert_eq!(report.slow_jobs.len(), 1, "the only job is the slowest");
    assert_eq!(report.slow_jobs[0].queries, served.queries);
    assert_eq!(
        report.slow_jobs[0].full_queries + report.slow_jobs[0].delta_queries,
        served.queries,
        "route attribution partitions the counted queries"
    );
    // The HTTP exposition must agree with the Stats frame exactly.
    let http_addr = server.metrics_addr().expect("metrics listener");
    let mut scrape = TcpStream::connect(http_addr).expect("connect /metrics");
    {
        use std::io::Write as _;
        write!(scrape, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n").expect("send");
    }
    let mut page = String::new();
    {
        use std::io::Read as _;
        scrape.read_to_string(&mut page).expect("read scrape");
    }
    assert!(
        page.contains(&format!("queries_total {}", served.queries)),
        "{page}"
    );
    assert!(page.contains("jobs_done 1"), "{page}");
    drop(s);
    server.request_shutdown();
    server.wait();
}

#[test]
fn invalid_jobs_get_errors_and_the_daemon_stays_up() {
    let mut s = connect();
    let cases: Vec<(Request, &str)> = vec![
        (
            Request::Attack(JobRequest {
                arch: "alexnet".into(),
                scale: "shapes32".into(),
                image: ImageSpec {
                    test_index: Some(0),
                    inline: None,
                },
                budget: 10,
                program: None,
                seed: 1,
            }),
            "unknown arch",
        ),
        (
            Request::Attack(JobRequest {
                arch: "mlp".into(),
                scale: "shapes16".into(),
                image: ImageSpec {
                    test_index: Some(0),
                    inline: None,
                },
                budget: 10,
                program: None,
                seed: 1,
            }),
            "unknown scale",
        ),
        (attack_request(0, 1), "budget"),
        (attack_request(u64::MAX, 1), "per-job limit"),
        (
            Request::Attack(JobRequest {
                arch: "mlp".into(),
                scale: "shapes32".into(),
                image: ImageSpec {
                    test_index: Some(u64::MAX),
                    inline: None,
                },
                budget: 10,
                program: None,
                seed: 1,
            }),
            "out of range",
        ),
        (
            Request::Attack(JobRequest {
                arch: "mlp".into(),
                scale: "shapes32".into(),
                image: ImageSpec {
                    test_index: None,
                    inline: Some(InlineImage {
                        height: 5,
                        width: 5,
                        data: vec![0.0; 75],
                        true_class: 0,
                    }),
                },
                budget: 10,
                program: None,
                seed: 1,
            }),
            "32x32",
        ),
    ];
    for (req, want) in cases {
        match roundtrip(&mut s, &req) {
            Response::Error(e) => assert!(e.contains(want), "want {want:?} in {e:?}"),
            other => panic!("expected Error containing {want:?}, got {other:?}"),
        }
    }
    // The connection survived every rejection.
    assert_eq!(roundtrip(&mut s, &Request::Ping), Response::Pong);
}

#[test]
fn json_garbage_answers_an_error_and_keeps_the_connection() {
    let mut s = connect();
    write_frame(&mut s, "this is not json").expect("send garbage");
    let payload = read_frame(&mut s).expect("read").expect("response");
    match serde_json::from_str::<Response>(&payload).expect("parse") {
        Response::Error(e) => assert!(e.contains("bad request"), "{e}"),
        other => panic!("expected Error, got {other:?}"),
    }
    assert_eq!(roundtrip(&mut s, &Request::Ping), Response::Pong);
}

#[test]
fn oversized_frame_is_rejected_and_the_connection_closed() {
    use std::io::Write as _;
    let mut s = connect();
    // A length prefix far beyond MAX_FRAME_LEN, no payload behind it.
    s.write_all(&u32::MAX.to_le_bytes()).expect("send prefix");
    s.flush().expect("flush");
    let payload = read_frame(&mut s).expect("read").expect("response");
    match serde_json::from_str::<Response>(&payload).expect("parse") {
        Response::Error(e) => assert!(e.contains("exceeds"), "{e}"),
        other => panic!("expected Error, got {other:?}"),
    }
    // The server closes after a framing-level violation.
    assert!(
        matches!(read_frame(&mut s), Ok(None) | Err(_)),
        "connection should be closed"
    );
    // But the daemon itself is still accepting.
    let mut s2 = connect();
    assert_eq!(roundtrip(&mut s2, &Request::Ping), Response::Pong);
}

#[test]
fn shutdown_frame_flips_the_server_flag() {
    // Run last-ish in practice, but safe in any order: shutdown only sets
    // the flag — the shared server is drained when the test process ends.
    // Use a *dedicated* server so other tests keep a live daemon.
    let cfg = ServerConfig {
        zoo: oppsla_eval::zoo::ZooConfig {
            train_per_class: 8,
            epochs: Some(2),
            learning_rate: 2e-3,
            seed: 1,
            cache_dir: None,
        },
        test_per_class: 3,
        ..Default::default()
    };
    let server = Server::start(cfg).expect("bind");
    let addr = server.local_addr();
    let mut s = TcpStream::connect(addr).expect("connect");
    assert_eq!(
        roundtrip(&mut s, &Request::Shutdown),
        Response::ShuttingDown
    );
    assert!(server.shutdown_requested());
    // wait() must now return promptly (drain, join, done).
    server.wait();
}
