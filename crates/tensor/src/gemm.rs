//! Cache-blocked, panel-packed matrix multiplication for the inference
//! hot path.
//!
//! [`ops::matmul_into`](crate::ops::matmul_into) walks `A` and `B` in
//! their natural row-major layouts, so for the im2col convolution shapes
//! (`A = [out_c, c·kh·kw]` weights, `B = [c·kh·kw, oh·ow]` columns) every
//! sweep over `k` re-streams both operands from memory. The kernels here
//! follow the classic BLIS decomposition instead: `A` is repacked once
//! into row panels of [`MR`] ([`pack_a`], reusable across every query
//! against the same weights), `B` is repacked per call into column panels
//! of [`NR`] inside a caller-owned scratch buffer, and a register-tiled
//! `MR×NR` micro-kernel accumulates `KC`-deep slabs that stay resident in
//! cache.
//!
//! # Determinism contract
//!
//! [`matmul_packed_into`] is **bit-identical** to
//! [`ops::matmul_into`](crate::ops::matmul_into) — not merely close. The
//! naive kernel gives every output element the add sequence
//! `((0 + a·b)₀ + a·b)₁ …` in strictly ascending `k`. The blocked kernel
//! preserves that exact sequence: `k` slabs are processed in ascending
//! order, each micro-tile accumulator starts from zero on the first slab
//! and reloads the previously stored `f32` values (an exact round trip —
//! no extended precision) on later slabs, and within a slab each element
//! accumulates in ascending `k` with a separate multiply and add (Rust
//! never contracts to FMA). The speedup comes from packing, cache
//! residency, and register reuse — not from reassociation — so tests can
//! (and do) assert exact equality on every shape, including shapes that
//! are not multiples of the block sizes.

use crate::ops::{im2col_into, Conv2dGeometry};

/// Micro-kernel row count: each micro-tile covers `MR` rows of `A`.
pub const MR: usize = 4;
/// Micro-kernel column count: each micro-tile covers `NR` columns of `B`.
pub const NR: usize = 16;
/// Slab depth: the shared `k` dimension is processed in blocks of `KC`.
pub const KC: usize = 256;
/// Row block: `MC` rows of packed `A` are swept per packed `B` panel.
pub const MC: usize = 64;
/// Column block: `NC` columns of `B` are packed at a time.
pub const NC: usize = 256;

/// The left-hand operand of [`matmul_packed_into`], repacked into
/// `MR`-row micro-panels (k-major within each panel, zero-padded to a
/// multiple of [`MR`] rows). Pack once per weight matrix and reuse for
/// every multiplication against it.
#[derive(Debug, Clone)]
pub struct PackedA {
    m: usize,
    k: usize,
    data: Vec<f32>,
}

impl PackedA {
    /// Row count of the original matrix.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Shared-dimension length of the original matrix.
    pub fn k(&self) -> usize {
        self.k
    }
}

/// Repacks a row-major `A: [m, k]` into [`PackedA`] panels: `KC`-deep
/// slabs outermost, then `MR`-row micro-panels, each stored k-major so
/// the micro-kernel reads both operands with unit stride.
///
/// # Panics
///
/// Panics if the slice length disagrees with the given dimensions.
pub fn pack_a(a: &[f32], m: usize, k: usize) -> PackedA {
    assert_eq!(a.len(), m * k, "pack_a input length");
    let panels = m.div_ceil(MR);
    let mut data = vec![0.0f32; panels * MR * k];
    let mut pos = 0;
    for k0 in (0..k).step_by(KC) {
        let kc = KC.min(k - k0);
        for p in 0..panels {
            for kk in 0..kc {
                for r in 0..MR {
                    let i = p * MR + r;
                    data[pos] = if i < m { a[i * k + k0 + kk] } else { 0.0 };
                    pos += 1;
                }
            }
        }
    }
    PackedA { m, k, data }
}

/// Matrix product `A · B` into `out` for a pre-packed `A: [m, k]`,
/// row-major `B: [k, n]`, `out: [m, n]`. Overwrites `out`. Bit-identical
/// to [`ops::matmul_into`](crate::ops::matmul_into) (see the module
/// docs for why).
///
/// `pack_buf` is scratch for the `B` panels; it is grown to a fixed
/// capacity (`KC·NC` floats) on first use and never after, so reusing it
/// across calls makes the steady state allocation-free.
///
/// # Panics
///
/// Panics if a slice length disagrees with the packed dimensions.
pub fn matmul_packed_into(
    pa: &PackedA,
    b: &[f32],
    n: usize,
    pack_buf: &mut Vec<f32>,
    out: &mut [f32],
) {
    let (m, k) = (pa.m, pa.k);
    assert_eq!(b.len(), k * n, "matmul_packed_into rhs length");
    assert_eq!(out.len(), m * n, "matmul_packed_into out length");
    if k == 0 {
        // Degenerate: the naive kernel zero-fills and adds nothing.
        out.fill(0.0);
        return;
    }
    let panels = m.div_ceil(MR);
    pack_buf.resize(KC * NC, 0.0);
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        let npanels = nc.div_ceil(NR);
        for (kb, k0) in (0..k).step_by(KC).enumerate() {
            let kc = KC.min(k - k0);
            // Pack this B slab: `npanels` column panels, k-major, the
            // ragged last panel zero-padded to NR lanes.
            for q in 0..npanels {
                let j0 = jc + q * NR;
                let ncols = NR.min(n - j0);
                let dst = &mut pack_buf[q * kc * NR..(q + 1) * kc * NR];
                for kk in 0..kc {
                    let brow = &b[(k0 + kk) * n + j0..(k0 + kk) * n + j0 + ncols];
                    let lane = &mut dst[kk * NR..(kk + 1) * NR];
                    lane[..ncols].copy_from_slice(brow);
                    lane[ncols..].fill(0.0);
                }
            }
            let first = kb == 0;
            let a_block = &pa.data[panels * MR * k0..panels * MR * (k0 + kc)];
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                for q in 0..npanels {
                    let j0 = jc + q * NR;
                    let ncols = NR.min(n - j0);
                    let b_panel = &pack_buf[q * kc * NR..(q + 1) * kc * NR];
                    for ir in (0..mc).step_by(MR) {
                        let i0 = ic + ir;
                        // MC is a multiple of MR, so i0 always starts a panel.
                        let a_panel = &a_block[(i0 / MR) * kc * MR..(i0 / MR + 1) * kc * MR];
                        let nrows = MR.min(m - i0);
                        micro_kernel(a_panel, b_panel, kc, first, out, n, i0, j0, nrows, ncols);
                    }
                }
            }
        }
    }
}

/// `MR×NR` register tile: load the partial `C` tile (zero on the first
/// `k` slab), accumulate `kc` ascending rank-1 updates, store back the
/// valid lanes. Padded lanes compute garbage that is never stored.
#[inline]
#[allow(clippy::too_many_arguments)]
fn micro_kernel(
    a_panel: &[f32],
    b_panel: &[f32],
    kc: usize,
    first: bool,
    out: &mut [f32],
    n: usize,
    i0: usize,
    j0: usize,
    nrows: usize,
    ncols: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    if !first {
        for (r, row) in acc.iter_mut().enumerate().take(nrows) {
            let off = (i0 + r) * n + j0;
            row[..ncols].copy_from_slice(&out[off..off + ncols]);
        }
    }
    for kk in 0..kc {
        let av: &[f32; MR] = a_panel[kk * MR..(kk + 1) * MR].try_into().unwrap();
        let bv: &[f32; NR] = b_panel[kk * NR..(kk + 1) * NR].try_into().unwrap();
        for (row, &a) in acc.iter_mut().zip(av.iter()) {
            for (o, &x) in row.iter_mut().zip(bv.iter()) {
                *o += a * x;
            }
        }
    }
    for (r, row) in acc.iter().enumerate().take(nrows) {
        let off = (i0 + r) * n + j0;
        out[off..off + ncols].copy_from_slice(&row[..ncols]);
    }
}

/// Unfolds a batch of NCHW images `[batch, c, h, w]` into `batch`
/// consecutive `[c·kh·kw, oh·ow]` column matrices (one
/// [`im2col_into`] result per image). Overwrites `out`.
///
/// # Panics
///
/// Panics if a slice length disagrees with `batch` and `geom`.
pub fn im2col_batch_into(images: &[f32], batch: usize, geom: &Conv2dGeometry, out: &mut [f32]) {
    let chw = geom.in_channels * geom.in_h * geom.in_w;
    assert_eq!(images.len(), batch * chw, "im2col_batch_into images length");
    let cols = geom.in_channels * geom.kernel_h * geom.kernel_w * geom.out_h() * geom.out_w();
    assert_eq!(out.len(), batch * cols, "im2col_batch_into out length");
    for (image, cols) in images.chunks_exact(chw).zip(out.chunks_exact_mut(cols)) {
        im2col_into(image, geom, cols);
    }
}

/// Convolves a batch of NCHW images `[batch, c, h, w]` with a pre-packed
/// kernel bank (`weight = pack_a` of the flattened `[out_c, c·kh·kw]`
/// filters) into `out: [batch, out_c, oh, ow]` via per-image im2col +
/// [`matmul_packed_into`] + bias broadcast — the exact op sequence of the
/// single-image im2col pipeline, so each image's result is bit-identical
/// to processing it alone.
///
/// `cols` is per-image im2col scratch (`c·kh·kw · oh·ow` floats) and
/// `pack_buf` the GEMM packing scratch; both are reused across the batch.
///
/// # Panics
///
/// Panics if a slice length disagrees with `batch`, `geom`, or the
/// packed weight dimensions.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_batch_into(
    images: &[f32],
    batch: usize,
    weight: &PackedA,
    bias: &[f32],
    geom: &Conv2dGeometry,
    out_c: usize,
    cols: &mut [f32],
    pack_buf: &mut Vec<f32>,
    out: &mut [f32],
) {
    let chw = geom.in_channels * geom.in_h * geom.in_w;
    assert_eq!(images.len(), batch * chw, "conv2d_batch_into images length");
    let k = geom.in_channels * geom.kernel_h * geom.kernel_w;
    assert_eq!(weight.m(), out_c, "conv2d_batch_into weight rows");
    assert_eq!(weight.k(), k, "conv2d_batch_into weight depth");
    assert_eq!(bias.len(), out_c, "conv2d_batch_into bias length");
    let area = geom.out_h() * geom.out_w();
    assert_eq!(cols.len(), k * area, "conv2d_batch_into cols length");
    assert_eq!(
        out.len(),
        batch * out_c * area,
        "conv2d_batch_into out length"
    );
    for (image, ob) in images
        .chunks_exact(chw)
        .zip(out.chunks_exact_mut(out_c * area))
    {
        im2col_into(image, geom, cols);
        matmul_packed_into(weight, cols, area, pack_buf, ob);
        for (oc, orow) in ob.chunks_exact_mut(area).enumerate() {
            let b = bias[oc];
            for o in orow.iter_mut() {
                *o += b;
            }
        }
    }
}
