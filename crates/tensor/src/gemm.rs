//! Cache-blocked, panel-packed matrix multiplication for the inference
//! hot path.
//!
//! [`ops::matmul_into`](crate::ops::matmul_into) walks `A` and `B` in
//! their natural row-major layouts, so for the im2col convolution shapes
//! (`A = [out_c, c·kh·kw]` weights, `B = [c·kh·kw, oh·ow]` columns) every
//! sweep over `k` re-streams both operands from memory. The kernels here
//! follow the classic BLIS decomposition instead: `A` is repacked once
//! into row panels of [`MR`] ([`pack_a`], reusable across every query
//! against the same weights), `B` is repacked per call into column panels
//! of [`NR`] inside a caller-owned scratch buffer, and a register-tiled
//! `MR×NR` micro-kernel accumulates `KC`-deep slabs that stay resident in
//! cache.
//!
//! # Determinism contract
//!
//! [`matmul_packed_into`] is **bit-identical** to
//! [`ops::matmul_into`](crate::ops::matmul_into) — not merely close. The
//! naive kernel gives every output element the add sequence
//! `((0 + a·b)₀ + a·b)₁ …` in strictly ascending `k`. The blocked kernel
//! preserves that exact sequence: `k` slabs are processed in ascending
//! order, each micro-tile accumulator starts from zero on the first slab
//! and reloads the previously stored `f32` values (an exact round trip —
//! no extended precision) on later slabs, and within a slab each element
//! accumulates in ascending `k` with a separate multiply and add (Rust
//! never contracts to FMA). The speedup comes from packing, cache
//! residency, and register reuse — not from reassociation — so tests can
//! (and do) assert exact equality on every shape, including shapes that
//! are not multiples of the block sizes.
//!
//! # SIMD microkernels
//!
//! The `MR×NR` micro-kernel is vectorized **across the `NR` output
//! columns**: each SIMD lane owns one output column of the tile, so a
//! lane runs exactly the scalar recurrence `acc += a·b` in the same
//! ascending-`k` order — independent accumulators, no horizontal
//! reduction, no reassociation, explicit mul-then-add intrinsics (never
//! FMA). IEEE-754 arithmetic is identical lane-by-lane to the scalar
//! loop, so every SIMD level is bit-identical by construction (enforced
//! against the scalar kernel by `tests/gemm_simd.rs` proptests).
//!
//! The widest level the CPU supports is picked once at runtime
//! ([`active_level`]; AVX-512F/AVX2/SSE2 on x86_64 via
//! `is_x86_feature_detected!`, NEON on aarch64, scalar anywhere else).
//! Setting `OPPSLA_NO_SIMD=1` in the environment pins the scalar kernel;
//! [`force_simd_level`] overrides the choice programmatically (tests,
//! benchmarks — safe at any time precisely because all levels agree
//! bit-for-bit).
//!
//! # Threading
//!
//! [`matmul_packed_into`] splits the outer `NC` column loop across up to
//! [`gemm_threads`] scoped workers for sufficiently large products. Each
//! worker owns a disjoint, contiguous range of `NC`-aligned output
//! columns — it packs its own `B` panels and writes only its own columns
//! — so the arithmetic per output element is exactly the serial kernel's
//! and results are byte-identical for any thread count (also proptested).
//! Threading defaults to 1 (`OPPSLA_GEMM_THREADS` or [`set_gemm_threads`]
//! raise it); threaded calls allocate one `KC·NC` pack buffer per worker,
//! which only large GEMMs amortize, so small products always run serially
//! on the caller's thread.

use crate::ops::{im2col_into, Conv2dGeometry};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

/// Micro-kernel row count: each micro-tile covers `MR` rows of `A`.
pub const MR: usize = 4;
/// Micro-kernel column count: each micro-tile covers `NR` columns of `B`.
pub const NR: usize = 16;
/// Slab depth: the shared `k` dimension is processed in blocks of `KC`.
pub const KC: usize = 256;
/// Row block: `MC` rows of packed `A` are swept per packed `B` panel.
pub const MC: usize = 64;
/// Column block: `NC` columns of `B` are packed at a time.
pub const NC: usize = 256;

/// One ISA level of the `MR×NR` micro-kernel. Every level computes
/// bit-identical results (column-lane vectorization preserves the scalar
/// per-element mul-then-add recurrence exactly); levels differ only in
/// throughput. Variants for other architectures exist everywhere so level
/// names serialize portably, but run the scalar kernel when the host
/// cannot execute them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimdLevel {
    /// Portable scalar loop (any architecture, and the `OPPSLA_NO_SIMD=1`
    /// escape hatch).
    Scalar,
    /// x86_64 SSE2: 4 f32 lanes (baseline on every x86_64).
    Sse2,
    /// x86_64 AVX2: 8 f32 lanes.
    Avx2,
    /// x86_64 AVX-512F: 16 f32 lanes — one register per tile row.
    Avx512,
    /// aarch64 NEON: 4 f32 lanes (baseline on every aarch64).
    Neon,
}

impl SimdLevel {
    /// Stable lower-case name for reports (`simd_isa` bench field).
    pub fn as_str(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512f",
            SimdLevel::Neon => "neon",
        }
    }

    fn code(self) -> u8 {
        match self {
            SimdLevel::Scalar => 0,
            SimdLevel::Sse2 => 1,
            SimdLevel::Avx2 => 2,
            SimdLevel::Avx512 => 3,
            SimdLevel::Neon => 4,
        }
    }

    fn from_code(code: u8) -> SimdLevel {
        match code {
            1 => SimdLevel::Sse2,
            2 => SimdLevel::Avx2,
            3 => SimdLevel::Avx512,
            4 => SimdLevel::Neon,
            _ => SimdLevel::Scalar,
        }
    }
}

/// Every micro-kernel level this host can execute, narrowest to widest.
/// Always starts with [`SimdLevel::Scalar`]; the last entry is the level
/// [`active_level`] picks unless overridden.
pub fn available_levels() -> Vec<SimdLevel> {
    #[allow(unused_mut)]
    let mut levels = vec![SimdLevel::Scalar];
    #[cfg(target_arch = "x86_64")]
    {
        // SSE2 is part of the x86_64 baseline — no detection needed.
        levels.push(SimdLevel::Sse2);
        if std::arch::is_x86_feature_detected!("avx2") {
            levels.push(SimdLevel::Avx2);
        }
        if std::arch::is_x86_feature_detected!("avx512f") {
            levels.push(SimdLevel::Avx512);
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        // NEON is part of the aarch64 baseline.
        levels.push(SimdLevel::Neon);
    }
    levels
}

/// Whether `OPPSLA_NO_SIMD` disables SIMD. Recognized spellings: unset,
/// empty, `0`, `false` and `off` leave SIMD on; `1`, `true` and `on`
/// disable it. Anything else also disables SIMD (the conservative
/// fallback — the variable was set, so the user wanted *something*) but
/// returns a warning so a daemon operator sees the typo once on stderr.
/// Split out so the policy is unit-testable without mutating the process
/// environment.
pub(crate) fn no_simd_env(value: Option<&str>) -> (bool, Option<String>) {
    match value {
        None => (false, None),
        Some(v) => match v.to_ascii_lowercase().as_str() {
            "" | "0" | "false" | "off" => (false, None),
            "1" | "true" | "on" => (true, None),
            other => (
                true,
                Some(format!(
                    "OPPSLA_NO_SIMD={other:?} is not a recognized boolean \
                     (use 0/1); treating it as enabled and pinning the scalar kernel"
                )),
            ),
        },
    }
}

/// Every level name `OPPSLA_SIMD_LEVEL` accepts, for diagnostics.
const LEVEL_NAMES: &[&str] = &["scalar", "sse2", "avx2", "avx512f", "neon"];

/// Resolves `OPPSLA_SIMD_LEVEL` (a level name such as `avx2`) against the
/// host's available levels: the named level if the host can execute it,
/// otherwise the widest available. `None`/empty means no cap. A name this
/// host cannot execute or an unknown name falls back to the widest
/// available level and returns a warning describing the fallback. Split
/// out so the policy is unit-testable without mutating the environment.
pub(crate) fn level_cap_env(
    value: Option<&str>,
    available: &[SimdLevel],
) -> (SimdLevel, Option<String>) {
    let widest = *available.last().expect("scalar always available");
    match value {
        Some(name) if !name.is_empty() => {
            if let Some(level) = available.iter().copied().find(|l| l.as_str() == name) {
                (level, None)
            } else if LEVEL_NAMES.contains(&name) {
                (
                    widest,
                    Some(format!(
                        "OPPSLA_SIMD_LEVEL={name} is not executable on this host; \
                         falling back to the widest available level ({})",
                        widest.as_str()
                    )),
                )
            } else {
                (
                    widest,
                    Some(format!(
                        "OPPSLA_SIMD_LEVEL={name:?} is not a known level \
                         (known: {}); falling back to the widest available level ({})",
                        LEVEL_NAMES.join(", "),
                        widest.as_str()
                    )),
                )
            }
        }
        _ => (widest, None),
    }
}

/// Upper bound on `OPPSLA_GEMM_THREADS`: far beyond any sensible host,
/// low enough that a typo (`400000`) cannot make every GEMM try to spawn
/// a small city of scoped threads.
pub(crate) const MAX_GEMM_THREADS: usize = 256;

/// Resolves `OPPSLA_GEMM_THREADS`: a positive integer up to
/// [`MAX_GEMM_THREADS`]. Unset/empty means 1 (sequential). Invalid or
/// out-of-range values fall back (0 / unparsable → 1, oversized → the
/// cap) and return a warning so the fallback is visible once on stderr
/// instead of silently swallowed. Split out so the parse table is
/// unit-testable without mutating the environment.
pub(crate) fn gemm_threads_env(value: Option<&str>) -> (usize, Option<String>) {
    match value {
        None => (1, None),
        Some("") => (1, None),
        Some(v) => match v.parse::<usize>() {
            Ok(0) => (
                1,
                Some(
                    "OPPSLA_GEMM_THREADS=0 is out of range (minimum 1); \
                     running GEMMs sequentially"
                        .to_string(),
                ),
            ),
            Ok(n) if n > MAX_GEMM_THREADS => (
                MAX_GEMM_THREADS,
                Some(format!(
                    "OPPSLA_GEMM_THREADS={n} exceeds the supported maximum; \
                     clamping to {MAX_GEMM_THREADS}"
                )),
            ),
            Ok(n) => (n, None),
            Err(_) => (
                1,
                Some(format!(
                    "OPPSLA_GEMM_THREADS={v:?} is not a positive integer; \
                     running GEMMs sequentially"
                )),
            ),
        },
    }
}

/// Prints an env-var fallback warning to stderr, once per variable per
/// process (daemon logs should not repeat it on every lazy re-resolve).
fn warn_env_once(once: &std::sync::Once, warning: &Option<String>) {
    if let Some(msg) = warning {
        once.call_once(|| eprintln!("warning: {msg}"));
    }
}

/// Lazily resolved dispatch state. `LEVEL` holds `SimdLevel::code() + 1`
/// (0 = not yet resolved); `THREADS` holds the configured worker count
/// (0 = not yet resolved).
static LEVEL: AtomicU8 = AtomicU8::new(0);
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// The micro-kernel level [`matmul_packed_into`] dispatches to: the
/// widest available level, unless `OPPSLA_NO_SIMD=1` pinned the scalar
/// kernel, `OPPSLA_SIMD_LEVEL=<name>` pinned a specific level, or
/// [`force_simd_level`] overrode the choice.
pub fn active_level() -> SimdLevel {
    match LEVEL.load(Ordering::Relaxed) {
        0 => {
            static NO_SIMD_WARNED: std::sync::Once = std::sync::Once::new();
            static LEVEL_WARNED: std::sync::Once = std::sync::Once::new();
            let (no_simd, warning) = no_simd_env(std::env::var("OPPSLA_NO_SIMD").ok().as_deref());
            warn_env_once(&NO_SIMD_WARNED, &warning);
            let level = if no_simd {
                SimdLevel::Scalar
            } else {
                let (level, warning) = level_cap_env(
                    std::env::var("OPPSLA_SIMD_LEVEL").ok().as_deref(),
                    &available_levels(),
                );
                warn_env_once(&LEVEL_WARNED, &warning);
                level
            };
            // A racing first call resolves to the same value, so a plain
            // store is fine.
            LEVEL.store(level.code() + 1, Ordering::Relaxed);
            level
        }
        code => SimdLevel::from_code(code - 1),
    }
}

/// The detected ISA name reported in the bench JSONs.
pub fn simd_isa() -> &'static str {
    active_level().as_str()
}

/// Overrides the dispatched micro-kernel level (tests, A/B benchmarks).
/// Safe at any time — every level is bit-identical, so concurrent GEMMs
/// merely change speed, never results. A level the host cannot execute
/// falls back to the scalar kernel.
pub fn force_simd_level(level: SimdLevel) {
    LEVEL.store(level.code() + 1, Ordering::Relaxed);
}

/// The worker-thread count [`matmul_packed_into`] may fan out to
/// (default 1; `OPPSLA_GEMM_THREADS` sets the initial value — invalid or
/// out-of-range values warn once on stderr and fall back per
/// [`gemm_threads_env`]).
pub fn gemm_threads() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        0 => {
            static WARNED: std::sync::Once = std::sync::Once::new();
            let (n, warning) =
                gemm_threads_env(std::env::var("OPPSLA_GEMM_THREADS").ok().as_deref());
            warn_env_once(&WARNED, &warning);
            THREADS.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// Sets the GEMM worker-thread count (clamped to at least 1). Results are
/// byte-identical for any value; only wall-clock time changes.
pub fn set_gemm_threads(n: usize) {
    THREADS.store(n.max(1), Ordering::Relaxed);
}

/// Minimum multiply-add count before a GEMM fans out to worker threads:
/// below this, scoped-thread spawn and per-worker pack buffers cost more
/// than they save. 4M madds ≈ a 64×576×128-column conv product.
const PAR_MIN_MADDS: usize = 4_000_000;

/// The left-hand operand of [`matmul_packed_into`], repacked into
/// `MR`-row micro-panels (k-major within each panel, zero-padded to a
/// multiple of [`MR`] rows). Pack once per weight matrix and reuse for
/// every multiplication against it.
#[derive(Debug, Clone)]
pub struct PackedA {
    m: usize,
    k: usize,
    data: Vec<f32>,
}

impl PackedA {
    /// Row count of the original matrix.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Shared-dimension length of the original matrix.
    pub fn k(&self) -> usize {
        self.k
    }
}

/// Repacks a row-major `A: [m, k]` into [`PackedA`] panels: `KC`-deep
/// slabs outermost, then `MR`-row micro-panels, each stored k-major so
/// the micro-kernel reads both operands with unit stride.
///
/// # Panics
///
/// Panics if the slice length disagrees with the given dimensions.
pub fn pack_a(a: &[f32], m: usize, k: usize) -> PackedA {
    assert_eq!(a.len(), m * k, "pack_a input length");
    let panels = m.div_ceil(MR);
    let mut data = vec![0.0f32; panels * MR * k];
    let mut pos = 0;
    for k0 in (0..k).step_by(KC) {
        let kc = KC.min(k - k0);
        for p in 0..panels {
            for kk in 0..kc {
                for r in 0..MR {
                    let i = p * MR + r;
                    data[pos] = if i < m { a[i * k + k0 + kk] } else { 0.0 };
                    pos += 1;
                }
            }
        }
    }
    PackedA { m, k, data }
}

/// Matrix product `A · B` into `out` for a pre-packed `A: [m, k]`,
/// row-major `B: [k, n]`, `out: [m, n]`. Overwrites `out`. Bit-identical
/// to [`ops::matmul_into`](crate::ops::matmul_into) (see the module
/// docs for why).
///
/// `pack_buf` is scratch for the `B` panels; it is grown to a fixed
/// capacity (`KC·NC` floats) on first use and never after, so reusing it
/// across calls makes the steady state allocation-free.
///
/// # Panics
///
/// Panics if a slice length disagrees with the packed dimensions.
pub fn matmul_packed_into(
    pa: &PackedA,
    b: &[f32],
    n: usize,
    pack_buf: &mut Vec<f32>,
    out: &mut [f32],
) {
    matmul_packed_into_with(active_level(), gemm_threads(), pa, b, n, pack_buf, out);
}

/// [`matmul_packed_into`] with the micro-kernel level and worker-thread
/// count given explicitly instead of read from the process-global
/// dispatch state. The workhorse behind the SIMD-vs-scalar equivalence
/// tests and the kernel microbenchmark; every `(level, threads)`
/// combination produces byte-identical output.
///
/// # Panics
///
/// Panics if a slice length disagrees with the packed dimensions.
pub fn matmul_packed_into_with(
    level: SimdLevel,
    threads: usize,
    pa: &PackedA,
    b: &[f32],
    n: usize,
    pack_buf: &mut Vec<f32>,
    out: &mut [f32],
) {
    let (m, k) = (pa.m, pa.k);
    assert_eq!(b.len(), k * n, "matmul_packed_into rhs length");
    assert_eq!(out.len(), m * n, "matmul_packed_into out length");
    if k == 0 {
        // Degenerate: the naive kernel zero-fills and adds nothing.
        out.fill(0.0);
        return;
    }
    // Fan out only when each worker gets at least one whole NC column
    // block and the product is big enough to amortize thread spawns.
    let blocks = n.div_ceil(NC);
    let threads = threads.max(1).min(blocks);
    if threads <= 1 || m * k * n < PAR_MIN_MADDS {
        pack_buf.resize(KC * NC, 0.0);
        // SAFETY: the full column range [0, n) on the caller's thread is
        // exactly the exclusive borrow `out` already grants.
        unsafe { gemm_col_range(level, pa, b, n, 0, n, pack_buf, out.as_mut_ptr()) };
        return;
    }

    struct OutPtr(*mut f32);
    // SAFETY: workers write disjoint column ranges of `out` (see below).
    unsafe impl Send for OutPtr {}
    unsafe impl Sync for OutPtr {}
    let out_ptr = OutPtr(out.as_mut_ptr());
    let per = blocks / threads;
    let extra = blocks % threads;
    std::thread::scope(|scope| {
        let out_ptr = &out_ptr;
        let mut block0 = 0;
        for w in 0..threads {
            let nblocks = per + usize::from(w < extra);
            let j_lo = block0 * NC;
            let j_hi = ((block0 + nblocks) * NC).min(n);
            block0 += nblocks;
            scope.spawn(move || {
                let mut local_pack = vec![0.0f32; KC * NC];
                // SAFETY: each worker's [j_lo, j_hi) range is disjoint
                // (contiguous NC-aligned partition of [0, n)), and a
                // micro-tile only reads/writes `out` columns inside its
                // own range — so no two threads touch the same element.
                unsafe { gemm_col_range(level, pa, b, n, j_lo, j_hi, &mut local_pack, out_ptr.0) };
            });
        }
    });
}

/// The blocked GEMM restricted to output columns `[j_lo, j_hi)`: packs
/// `B` column panels for that range and sweeps the `KC`/`MC` blocking
/// loops over them. Column `j`'s arithmetic is independent of the range
/// it is computed in, so any partition of `[0, n)` reproduces the
/// full-range result bit for bit — this is what makes the threaded path
/// deterministic.
///
/// # Safety
///
/// `out` must point to an `m·n` f32 buffer; the caller must guarantee no
/// other thread reads or writes columns `[j_lo, j_hi)` of it for the
/// duration of the call. `j_lo` must be NC-aligned and `j_lo <= j_hi <=
/// n`.
#[allow(clippy::too_many_arguments)]
unsafe fn gemm_col_range(
    level: SimdLevel,
    pa: &PackedA,
    b: &[f32],
    n: usize,
    j_lo: usize,
    j_hi: usize,
    pack_buf: &mut Vec<f32>,
    out: *mut f32,
) {
    let (m, k) = (pa.m, pa.k);
    let panels = m.div_ceil(MR);
    pack_buf.resize(KC * NC, 0.0);
    for jc in (j_lo..j_hi).step_by(NC) {
        let nc = NC.min(j_hi - jc);
        let npanels = nc.div_ceil(NR);
        for (kb, k0) in (0..k).step_by(KC).enumerate() {
            let kc = KC.min(k - k0);
            // Pack this B slab: `npanels` column panels, k-major, the
            // ragged last panel zero-padded to NR lanes.
            for q in 0..npanels {
                let j0 = jc + q * NR;
                let ncols = NR.min(j_hi - j0);
                let dst = &mut pack_buf[q * kc * NR..(q + 1) * kc * NR];
                for kk in 0..kc {
                    let brow = &b[(k0 + kk) * n + j0..(k0 + kk) * n + j0 + ncols];
                    let lane = &mut dst[kk * NR..(kk + 1) * NR];
                    lane[..ncols].copy_from_slice(brow);
                    lane[ncols..].fill(0.0);
                }
            }
            let first = kb == 0;
            let a_block = &pa.data[panels * MR * k0..panels * MR * (k0 + kc)];
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                for q in 0..npanels {
                    let j0 = jc + q * NR;
                    let ncols = NR.min(j_hi - j0);
                    let b_panel = &pack_buf[q * kc * NR..(q + 1) * kc * NR];
                    for ir in (0..mc).step_by(MR) {
                        let i0 = ic + ir;
                        // MC is a multiple of MR, so i0 always starts a panel.
                        let a_panel = &a_block[(i0 / MR) * kc * MR..(i0 / MR + 1) * kc * MR];
                        let nrows = MR.min(m - i0);
                        micro_kernel(
                            level, a_panel, b_panel, kc, first, out, n, i0, j0, nrows, ncols,
                        );
                    }
                }
            }
        }
    }
}

/// `MR×NR` register tile: load the partial `C` tile (zero on the first
/// `k` slab), accumulate `kc` ascending rank-1 updates via the level's
/// lane kernel, store back the valid lanes. Padded lanes compute garbage
/// that is never stored.
///
/// # Safety
///
/// `out` must point to an `m·n` buffer whose tile
/// `[i0, i0+nrows) × [j0, j0+ncols)` this thread exclusively owns.
#[inline]
#[allow(clippy::too_many_arguments)]
unsafe fn micro_kernel(
    level: SimdLevel,
    a_panel: &[f32],
    b_panel: &[f32],
    kc: usize,
    first: bool,
    out: *mut f32,
    n: usize,
    i0: usize,
    j0: usize,
    nrows: usize,
    ncols: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    if !first {
        for (r, row) in acc.iter_mut().enumerate().take(nrows) {
            let off = (i0 + r) * n + j0;
            std::ptr::copy_nonoverlapping(out.add(off), row.as_mut_ptr(), ncols);
        }
    }
    accumulate(level, a_panel, b_panel, kc, &mut acc);
    for (r, row) in acc.iter().enumerate().take(nrows) {
        let off = (i0 + r) * n + j0;
        std::ptr::copy_nonoverlapping(row.as_ptr(), out.add(off), ncols);
    }
}

/// Dispatches the `kc` rank-1 updates of one tile to the level's lane
/// kernel. A level the host cannot execute (foreign architecture) runs
/// the scalar kernel — results are identical either way.
#[inline]
fn accumulate(
    level: SimdLevel,
    a_panel: &[f32],
    b_panel: &[f32],
    kc: usize,
    acc: &mut [[f32; NR]; MR],
) {
    debug_assert!(a_panel.len() >= kc * MR && b_panel.len() >= kc * NR);
    match level {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86_64 baseline.
        SimdLevel::Sse2 => unsafe { accumulate_sse2(a_panel, b_panel, kc, acc) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 if std::arch::is_x86_feature_detected!("avx2") => {
            // SAFETY: guarded by the runtime feature check.
            unsafe { accumulate_avx2(a_panel, b_panel, kc, acc) }
        }
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 if std::arch::is_x86_feature_detected!("avx512f") => {
            // SAFETY: guarded by the runtime feature check.
            unsafe { accumulate_avx512(a_panel, b_panel, kc, acc) }
        }
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is part of the aarch64 baseline.
        SimdLevel::Neon => unsafe { accumulate_neon(a_panel, b_panel, kc, acc) },
        _ => accumulate_scalar(a_panel, b_panel, kc, acc),
    }
}

/// The reference lane kernel: per accumulator, `kc` ascending mul-then-add
/// updates. Every SIMD kernel below reproduces exactly this recurrence per
/// lane.
#[inline]
fn accumulate_scalar(a_panel: &[f32], b_panel: &[f32], kc: usize, acc: &mut [[f32; NR]; MR]) {
    for kk in 0..kc {
        let av: &[f32; MR] = a_panel[kk * MR..(kk + 1) * MR].try_into().unwrap();
        let bv: &[f32; NR] = b_panel[kk * NR..(kk + 1) * NR].try_into().unwrap();
        for (row, &a) in acc.iter_mut().zip(av.iter()) {
            for (o, &x) in row.iter_mut().zip(bv.iter()) {
                *o += a * x;
            }
        }
    }
}

/// SSE2 lane kernel: 4 rows × four 4-lane registers. Explicit
/// `_mm_mul_ps` + `_mm_add_ps` (never FMA) in ascending `k`, so each lane
/// is bit-identical to the scalar recurrence.
///
/// # Safety
///
/// Caller must ensure the panels hold at least `kc` steps (checked by the
/// dispatcher's debug assert) and that SSE2 is available (x86_64
/// baseline).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn accumulate_sse2(a_panel: &[f32], b_panel: &[f32], kc: usize, acc: &mut [[f32; NR]; MR]) {
    use std::arch::x86_64::*;
    let mut c = [[_mm_setzero_ps(); 4]; MR];
    for (r, row) in acc.iter().enumerate() {
        for (v, cv) in row.chunks_exact(4).zip(c[r].iter_mut()) {
            *cv = _mm_loadu_ps(v.as_ptr());
        }
    }
    for kk in 0..kc {
        let bp = b_panel.as_ptr().add(kk * NR);
        let b = [
            _mm_loadu_ps(bp),
            _mm_loadu_ps(bp.add(4)),
            _mm_loadu_ps(bp.add(8)),
            _mm_loadu_ps(bp.add(12)),
        ];
        let ap = a_panel.as_ptr().add(kk * MR);
        for (r, crow) in c.iter_mut().enumerate() {
            let a = _mm_set1_ps(*ap.add(r));
            for (cv, &bv) in crow.iter_mut().zip(b.iter()) {
                *cv = _mm_add_ps(*cv, _mm_mul_ps(a, bv));
            }
        }
    }
    for (r, row) in acc.iter_mut().enumerate() {
        for (v, cv) in row.chunks_exact_mut(4).zip(c[r].iter()) {
            _mm_storeu_ps(v.as_mut_ptr(), *cv);
        }
    }
}

/// AVX2 lane kernel: 4 rows × two 8-lane registers, mul-then-add.
///
/// # Safety
///
/// Caller must ensure AVX2 is available and the panels hold `kc` steps.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn accumulate_avx2(a_panel: &[f32], b_panel: &[f32], kc: usize, acc: &mut [[f32; NR]; MR]) {
    use std::arch::x86_64::*;
    let mut c = [[_mm256_setzero_ps(); 2]; MR];
    for (r, row) in acc.iter().enumerate() {
        c[r][0] = _mm256_loadu_ps(row.as_ptr());
        c[r][1] = _mm256_loadu_ps(row.as_ptr().add(8));
    }
    for kk in 0..kc {
        let bp = b_panel.as_ptr().add(kk * NR);
        let b0 = _mm256_loadu_ps(bp);
        let b1 = _mm256_loadu_ps(bp.add(8));
        let ap = a_panel.as_ptr().add(kk * MR);
        for (r, crow) in c.iter_mut().enumerate() {
            let a = _mm256_set1_ps(*ap.add(r));
            crow[0] = _mm256_add_ps(crow[0], _mm256_mul_ps(a, b0));
            crow[1] = _mm256_add_ps(crow[1], _mm256_mul_ps(a, b1));
        }
    }
    for (r, row) in acc.iter_mut().enumerate() {
        _mm256_storeu_ps(row.as_mut_ptr(), c[r][0]);
        _mm256_storeu_ps(row.as_mut_ptr().add(8), c[r][1]);
    }
}

/// AVX-512F lane kernel: 4 rows × one 16-lane register (a full NR tile
/// row per register), mul-then-add.
///
/// # Safety
///
/// Caller must ensure AVX-512F is available and the panels hold `kc`
/// steps.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn accumulate_avx512(
    a_panel: &[f32],
    b_panel: &[f32],
    kc: usize,
    acc: &mut [[f32; NR]; MR],
) {
    use std::arch::x86_64::*;
    let mut c = [_mm512_setzero_ps(); MR];
    for (r, row) in acc.iter().enumerate() {
        c[r] = _mm512_loadu_ps(row.as_ptr());
    }
    for kk in 0..kc {
        let b = _mm512_loadu_ps(b_panel.as_ptr().add(kk * NR));
        let ap = a_panel.as_ptr().add(kk * MR);
        for (r, cv) in c.iter_mut().enumerate() {
            let a = _mm512_set1_ps(*ap.add(r));
            *cv = _mm512_add_ps(*cv, _mm512_mul_ps(a, b));
        }
    }
    for (r, row) in acc.iter_mut().enumerate() {
        _mm512_storeu_ps(row.as_mut_ptr(), c[r]);
    }
}

/// NEON lane kernel: 4 rows × four 4-lane registers, `vmulq`/`vaddq`
/// (never `vfmaq` — fused multiply-add would change the rounding).
///
/// # Safety
///
/// Caller must ensure the panels hold `kc` steps (NEON itself is aarch64
/// baseline).
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn accumulate_neon(a_panel: &[f32], b_panel: &[f32], kc: usize, acc: &mut [[f32; NR]; MR]) {
    use std::arch::aarch64::*;
    let mut c = [[vdupq_n_f32(0.0); 4]; MR];
    for (r, row) in acc.iter().enumerate() {
        for (v, cv) in row.chunks_exact(4).zip(c[r].iter_mut()) {
            *cv = vld1q_f32(v.as_ptr());
        }
    }
    for kk in 0..kc {
        let bp = b_panel.as_ptr().add(kk * NR);
        let b = [
            vld1q_f32(bp),
            vld1q_f32(bp.add(4)),
            vld1q_f32(bp.add(8)),
            vld1q_f32(bp.add(12)),
        ];
        let ap = a_panel.as_ptr().add(kk * MR);
        for (r, crow) in c.iter_mut().enumerate() {
            let a = vdupq_n_f32(*ap.add(r));
            for (cv, &bv) in crow.iter_mut().zip(b.iter()) {
                *cv = vaddq_f32(*cv, vmulq_f32(a, bv));
            }
        }
    }
    for (r, row) in acc.iter_mut().enumerate() {
        for (v, cv) in row.chunks_exact_mut(4).zip(c[r].iter()) {
            vst1q_f32(v.as_mut_ptr(), *cv);
        }
    }
}

/// Vector–matrix product against a **pre-transposed** weight:
/// `out[j] = Σ_k x[k] · wt[k·n + j]` for `wt: [k, n]`. With `wt` the
/// transpose of a `[n, k]` row-major weight `w`, this computes exactly
/// `ops::matmul_nt_into(x, w, 1, k, n, out)` — per output element the
/// same ascending-`k` mul-then-add sequence over the same floats — so
/// the two are bit-identical and a plan may pre-transpose its `Linear`
/// weights once and route the hot path here. Vectorized across the `n`
/// output lanes at [`active_level`] (each lane is an independent
/// accumulator; no horizontal reduction, no FMA).
///
/// # Panics
///
/// Panics if a slice length disagrees with `k`/`n`.
pub fn linear_nt_into(x: &[f32], wt: &[f32], k: usize, n: usize, out: &mut [f32]) {
    linear_nt_into_with(active_level(), x, wt, k, n, out);
}

/// [`linear_nt_into`] with the micro-kernel level given explicitly
/// (SIMD-vs-scalar equivalence tests). A level the host cannot execute
/// runs the scalar kernel; every level is bit-identical.
///
/// # Panics
///
/// Panics if a slice length disagrees with `k`/`n`.
pub fn linear_nt_into_with(
    level: SimdLevel,
    x: &[f32],
    wt: &[f32],
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    assert_eq!(x.len(), k, "linear_nt_into lhs length");
    assert_eq!(wt.len(), k * n, "linear_nt_into weight length");
    assert_eq!(out.len(), n, "linear_nt_into out length");
    match level {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86_64 baseline.
        SimdLevel::Sse2 => unsafe { vecmat_sse2(x, wt, k, n, out) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 if std::arch::is_x86_feature_detected!("avx2") => {
            // SAFETY: guarded by the runtime feature check.
            unsafe { vecmat_avx2(x, wt, k, n, out) }
        }
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 if std::arch::is_x86_feature_detected!("avx512f") => {
            // SAFETY: guarded by the runtime feature check.
            unsafe { vecmat_avx512(x, wt, k, n, out) }
        }
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is part of the aarch64 baseline.
        SimdLevel::Neon => unsafe { vecmat_neon(x, wt, k, n, out) },
        _ => vecmat_scalar(x, wt, k, n, out),
    }
}

/// Reference vector–matrix kernel: `k`-outer / `j`-inner so `wt` streams
/// once and the `out` row stays cache-hot. Per element this is the
/// ascending-`k` mul-then-add recurrence of `matmul_nt_into`; the
/// accumulator living in `out` instead of a register changes nothing —
/// f32 arithmetic rounds identically either way.
fn vecmat_scalar(x: &[f32], wt: &[f32], k: usize, n: usize, out: &mut [f32]) {
    out.fill(0.0);
    for kk in 0..k {
        let a = x[kk];
        let row = &wt[kk * n..(kk + 1) * n];
        for (o, &b) in out.iter_mut().zip(row) {
            *o += a * b;
        }
    }
}

/// Scalar tail for the SIMD kernels: columns `[j0, n)` that do not fill a
/// vector register, each accumulated in the same ascending-`k` order.
fn vecmat_scalar_tail(x: &[f32], wt: &[f32], k: usize, n: usize, j0: usize, out: &mut [f32]) {
    for (jj, o) in out.iter_mut().enumerate().skip(j0) {
        let mut acc = 0.0f32;
        for (kk, &a) in x.iter().enumerate().take(k) {
            acc += a * wt[kk * n + jj];
        }
        *o = acc;
    }
}

/// Generates one `vecmat_*` SIMD kernel: blocks of `4·LANES` columns held
/// in four accumulator registers with `k` innermost (weights stream once,
/// accumulators stay in registers), then single-register blocks, then the
/// scalar tail. Explicit mul-then-add per step keeps every lane
/// bit-identical to [`vecmat_scalar`].
macro_rules! vecmat_kernel {
    ($name:ident, $arch:literal, $feature:literal, $lanes:expr, $set1:ident, $load:ident, $store:ident, $zero:expr, $mul:ident, $add:ident) => {
        #[cfg(target_arch = $arch)]
        #[target_feature(enable = $feature)]
        unsafe fn $name(x: &[f32], wt: &[f32], k: usize, n: usize, out: &mut [f32]) {
            const L: usize = $lanes;
            let mut j = 0;
            while j + 4 * L <= n {
                let (mut c0, mut c1, mut c2, mut c3) = ($zero, $zero, $zero, $zero);
                for kk in 0..k {
                    let a = $set1(*x.get_unchecked(kk));
                    let p = wt.as_ptr().add(kk * n + j);
                    c0 = $add(c0, $mul(a, $load(p)));
                    c1 = $add(c1, $mul(a, $load(p.add(L))));
                    c2 = $add(c2, $mul(a, $load(p.add(2 * L))));
                    c3 = $add(c3, $mul(a, $load(p.add(3 * L))));
                }
                let o = out.as_mut_ptr().add(j);
                $store(o, c0);
                $store(o.add(L), c1);
                $store(o.add(2 * L), c2);
                $store(o.add(3 * L), c3);
                j += 4 * L;
            }
            while j + L <= n {
                let mut c = $zero;
                for kk in 0..k {
                    let a = $set1(*x.get_unchecked(kk));
                    c = $add(c, $mul(a, $load(wt.as_ptr().add(kk * n + j))));
                }
                $store(out.as_mut_ptr().add(j), c);
                j += L;
            }
            vecmat_scalar_tail(x, wt, k, n, j, out);
        }
    };
}

#[cfg(target_arch = "aarch64")]
use std::arch::aarch64::{vaddq_f32, vdupq_n_f32, vld1q_f32, vmulq_f32, vst1q_f32};
#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::{
    _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_setzero_ps,
    _mm256_storeu_ps, _mm512_add_ps, _mm512_loadu_ps, _mm512_mul_ps, _mm512_set1_ps,
    _mm512_setzero_ps, _mm512_storeu_ps, _mm_add_ps, _mm_loadu_ps, _mm_mul_ps, _mm_set1_ps,
    _mm_setzero_ps, _mm_storeu_ps,
};

vecmat_kernel!(
    vecmat_sse2,
    "x86_64",
    "sse2",
    4,
    _mm_set1_ps,
    _mm_loadu_ps,
    _mm_storeu_ps,
    _mm_setzero_ps(),
    _mm_mul_ps,
    _mm_add_ps
);
vecmat_kernel!(
    vecmat_avx2,
    "x86_64",
    "avx2",
    8,
    _mm256_set1_ps,
    _mm256_loadu_ps,
    _mm256_storeu_ps,
    _mm256_setzero_ps(),
    _mm256_mul_ps,
    _mm256_add_ps
);
vecmat_kernel!(
    vecmat_avx512,
    "x86_64",
    "avx512f",
    16,
    _mm512_set1_ps,
    _mm512_loadu_ps,
    _mm512_storeu_ps,
    _mm512_setzero_ps(),
    _mm512_mul_ps,
    _mm512_add_ps
);
vecmat_kernel!(
    vecmat_neon,
    "aarch64",
    "neon",
    4,
    vdupq_n_f32,
    vld1q_f32,
    vst1q_f32,
    vdupq_n_f32(0.0),
    vmulq_f32,
    vaddq_f32
);

/// Interior core of a stride-1 direct convolution: for every output
/// channel `oc < out_c` and lane `j < span`,
///
/// ```text
/// out[oc·out_stride + j] = Σ_{ch,ky,kx} weight[oc·k + tap] ·
///     image[(ch·h + iy0 + ky)·w + ix0 + j + kx]
/// ```
///
/// — `span` consecutive cells of one output row whose receptive fields
/// are fully in bounds (the caller carves off padded edge strips first).
/// Taps accumulate in the `(ch, ky, kx)`-major order of
/// [`crate::ops::conv2d_region_into`] with separate mul-then-add, and output
/// lanes are independent columns, so every level is bit-identical to the
/// scalar accumulation. Bias is **not** added here. The span is walked
/// greedily through descending vector widths (16 → 8 → 4 → scalar on
/// x86), so a span-14 row runs as one AVX2 block, one SSE2 block, and
/// two scalar lanes rather than leaving six lanes to the scalar tail —
/// the split changes nothing numerically because every lane is an
/// independent column.
///
/// # Panics
///
/// Panics if a slice length disagrees with the geometry arguments or the
/// tap window `[iy0, iy0 + kh) × [ix0, ix0 + span + kw - 1)` leaves the
/// image.
#[allow(clippy::too_many_arguments)]
pub fn conv_direct_core_into(
    level: SimdLevel,
    image: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    weight: &[f32],
    out_c: usize,
    iy0: usize,
    ix0: usize,
    span: usize,
    out: &mut [f32],
    out_stride: usize,
) {
    assert_eq!(image.len(), c * h * w, "conv_direct_core_into image length");
    assert_eq!(
        weight.len(),
        out_c * c * kh * kw,
        "conv_direct_core_into weight length"
    );
    assert!(
        iy0 + kh <= h && ix0 + span + kw - 1 <= w,
        "tap window leaves the {h}x{w} image"
    );
    assert!(
        span > 0 && (out_c - 1) * out_stride + span <= out.len(),
        "conv_direct_core_into out range"
    );
    let mut done = 0usize;
    while done < span {
        let rem = span - done;
        // Widest level whose full register the remaining lanes fill,
        // capped at the caller's `level`. The chunk is a whole multiple
        // of that width, so the kernels' scalar lane tails never run —
        // the final sub-width remainder goes to the scalar core.
        let eff = match level {
            SimdLevel::Avx512 if rem >= 16 => SimdLevel::Avx512,
            SimdLevel::Avx512 | SimdLevel::Avx2 if rem >= 8 => SimdLevel::Avx2,
            SimdLevel::Avx512 | SimdLevel::Avx2 | SimdLevel::Sse2 if rem >= 4 => SimdLevel::Sse2,
            SimdLevel::Neon if rem >= 4 => SimdLevel::Neon,
            _ => SimdLevel::Scalar,
        };
        let chunk = match eff {
            SimdLevel::Avx512 => rem / 16 * 16,
            SimdLevel::Avx2 => 8,
            SimdLevel::Sse2 | SimdLevel::Neon => 4,
            SimdLevel::Scalar => rem,
        };
        let (ix, o) = (ix0 + done, &mut out[done..]);
        match eff {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: SSE2 is part of the x86_64 baseline; ranges asserted.
            SimdLevel::Sse2 => unsafe {
                conv_core_sse2(
                    image, c, h, w, kh, kw, weight, out_c, iy0, ix, chunk, o, out_stride,
                )
            },
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 if std::arch::is_x86_feature_detected!("avx2") => {
                // SAFETY: guarded by the runtime feature check.
                unsafe {
                    conv_core_avx2(
                        image, c, h, w, kh, kw, weight, out_c, iy0, ix, chunk, o, out_stride,
                    )
                }
            }
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx512 if std::arch::is_x86_feature_detected!("avx512f") => {
                // SAFETY: guarded by the runtime feature check.
                unsafe {
                    conv_core_avx512(
                        image, c, h, w, kh, kw, weight, out_c, iy0, ix, chunk, o, out_stride,
                    )
                }
            }
            #[cfg(target_arch = "aarch64")]
            // SAFETY: NEON is part of the aarch64 baseline; ranges asserted.
            SimdLevel::Neon => unsafe {
                conv_core_neon(
                    image, c, h, w, kh, kw, weight, out_c, iy0, ix, chunk, o, out_stride,
                )
            },
            _ => conv_core_scalar(
                image, c, h, w, kh, kw, weight, out_c, iy0, ix, chunk, o, out_stride,
            ),
        }
        done += chunk;
    }
}

/// Reference interior-core kernel: each cell accumulates its taps from
/// zero in `(ch, ky, kx)` order — exactly the scalar recurrence of
/// `ops::conv2d_region_into` for cells with no out-of-bounds taps.
#[allow(clippy::too_many_arguments)]
fn conv_core_scalar(
    image: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    weight: &[f32],
    out_c: usize,
    iy0: usize,
    ix0: usize,
    span: usize,
    out: &mut [f32],
    out_stride: usize,
) {
    let k = c * kh * kw;
    for oc in 0..out_c {
        let wrow = &weight[oc * k..(oc + 1) * k];
        let orow = &mut out[oc * out_stride..oc * out_stride + span];
        for (j, o) in orow.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            let mut t = 0;
            for ch in 0..c {
                for ky in 0..kh {
                    let base = (ch * h + iy0 + ky) * w + ix0 + j;
                    for kx in 0..kw {
                        acc += wrow[t] * image[base + kx];
                        t += 1;
                    }
                }
            }
            *o = acc;
        }
    }
}

/// Generates one `conv_core_*` SIMD kernel: four output channels at a
/// time (four independent accumulator chains hide add latency; the tap
/// load is shared) over `LANES`-wide column blocks, then scalar lane
/// tails and a single-channel remainder — all in the exact tap order of
/// [`conv_core_scalar`], so every lane is bit-identical to it.
macro_rules! conv_core_kernel {
    ($name:ident, $arch:literal, $feature:literal, $lanes:expr, $set1:ident, $load:ident, $store:ident, $zero:expr, $mul:ident, $add:ident) => {
        #[cfg(target_arch = $arch)]
        #[target_feature(enable = $feature)]
        #[allow(clippy::too_many_arguments)]
        unsafe fn $name(
            image: &[f32],
            c: usize,
            h: usize,
            w: usize,
            kh: usize,
            kw: usize,
            weight: &[f32],
            out_c: usize,
            iy0: usize,
            ix0: usize,
            span: usize,
            out: &mut [f32],
            out_stride: usize,
        ) {
            const L: usize = $lanes;
            let k = c * kh * kw;
            let img = image.as_ptr();
            let mut oc = 0;
            while oc + 4 <= out_c {
                let w0 = weight.as_ptr().add(oc * k);
                let (w1, w2, w3) = (w0.add(k), w0.add(2 * k), w0.add(3 * k));
                let o0 = out.as_mut_ptr().add(oc * out_stride);
                let (o1, o2, o3) = (
                    o0.add(out_stride),
                    o0.add(2 * out_stride),
                    o0.add(3 * out_stride),
                );
                let mut j = 0;
                while j + L <= span {
                    let (mut a0, mut a1, mut a2, mut a3) = ($zero, $zero, $zero, $zero);
                    let mut t = 0;
                    for ch in 0..c {
                        for ky in 0..kh {
                            let base = img.add((ch * h + iy0 + ky) * w + ix0 + j);
                            for kx in 0..kw {
                                let xv = $load(base.add(kx));
                                a0 = $add(a0, $mul($set1(*w0.add(t)), xv));
                                a1 = $add(a1, $mul($set1(*w1.add(t)), xv));
                                a2 = $add(a2, $mul($set1(*w2.add(t)), xv));
                                a3 = $add(a3, $mul($set1(*w3.add(t)), xv));
                                t += 1;
                            }
                        }
                    }
                    $store(o0.add(j), a0);
                    $store(o1.add(j), a1);
                    $store(o2.add(j), a2);
                    $store(o3.add(j), a3);
                    j += L;
                }
                while j < span {
                    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                    let mut t = 0;
                    for ch in 0..c {
                        for ky in 0..kh {
                            let base = img.add((ch * h + iy0 + ky) * w + ix0 + j);
                            for kx in 0..kw {
                                let xv = *base.add(kx);
                                s0 += *w0.add(t) * xv;
                                s1 += *w1.add(t) * xv;
                                s2 += *w2.add(t) * xv;
                                s3 += *w3.add(t) * xv;
                                t += 1;
                            }
                        }
                    }
                    *o0.add(j) = s0;
                    *o1.add(j) = s1;
                    *o2.add(j) = s2;
                    *o3.add(j) = s3;
                    j += 1;
                }
                oc += 4;
            }
            while oc < out_c {
                let w0 = weight.as_ptr().add(oc * k);
                let o0 = out.as_mut_ptr().add(oc * out_stride);
                let mut j = 0;
                while j + L <= span {
                    let mut a0 = $zero;
                    let mut t = 0;
                    for ch in 0..c {
                        for ky in 0..kh {
                            let base = img.add((ch * h + iy0 + ky) * w + ix0 + j);
                            for kx in 0..kw {
                                a0 = $add(a0, $mul($set1(*w0.add(t)), $load(base.add(kx))));
                                t += 1;
                            }
                        }
                    }
                    $store(o0.add(j), a0);
                    j += L;
                }
                while j < span {
                    let mut s0 = 0.0f32;
                    let mut t = 0;
                    for ch in 0..c {
                        for ky in 0..kh {
                            let base = img.add((ch * h + iy0 + ky) * w + ix0 + j);
                            for kx in 0..kw {
                                s0 += *w0.add(t) * *base.add(kx);
                                t += 1;
                            }
                        }
                    }
                    *o0.add(j) = s0;
                    j += 1;
                }
                oc += 1;
            }
        }
    };
}

conv_core_kernel!(
    conv_core_sse2,
    "x86_64",
    "sse2",
    4,
    _mm_set1_ps,
    _mm_loadu_ps,
    _mm_storeu_ps,
    _mm_setzero_ps(),
    _mm_mul_ps,
    _mm_add_ps
);
conv_core_kernel!(
    conv_core_avx2,
    "x86_64",
    "avx2",
    8,
    _mm256_set1_ps,
    _mm256_loadu_ps,
    _mm256_storeu_ps,
    _mm256_setzero_ps(),
    _mm256_mul_ps,
    _mm256_add_ps
);
conv_core_kernel!(
    conv_core_avx512,
    "x86_64",
    "avx512f",
    16,
    _mm512_set1_ps,
    _mm512_loadu_ps,
    _mm512_storeu_ps,
    _mm512_setzero_ps(),
    _mm512_mul_ps,
    _mm512_add_ps
);
conv_core_kernel!(
    conv_core_neon,
    "aarch64",
    "neon",
    4,
    vdupq_n_f32,
    vld1q_f32,
    vst1q_f32,
    vdupq_n_f32(0.0),
    vmulq_f32,
    vaddq_f32
);

/// Unfolds a batch of NCHW images `[batch, c, h, w]` into `batch`
/// consecutive `[c·kh·kw, oh·ow]` column matrices (one
/// [`im2col_into`] result per image). Overwrites `out`.
///
/// # Panics
///
/// Panics if a slice length disagrees with `batch` and `geom`.
pub fn im2col_batch_into(images: &[f32], batch: usize, geom: &Conv2dGeometry, out: &mut [f32]) {
    let chw = geom.in_channels * geom.in_h * geom.in_w;
    assert_eq!(images.len(), batch * chw, "im2col_batch_into images length");
    let cols = geom.in_channels * geom.kernel_h * geom.kernel_w * geom.out_h() * geom.out_w();
    assert_eq!(out.len(), batch * cols, "im2col_batch_into out length");
    for (image, cols) in images.chunks_exact(chw).zip(out.chunks_exact_mut(cols)) {
        im2col_into(image, geom, cols);
    }
}

/// Convolves a batch of NCHW images `[batch, c, h, w]` with a pre-packed
/// kernel bank (`weight = pack_a` of the flattened `[out_c, c·kh·kw]`
/// filters) into `out: [batch, out_c, oh, ow]` via per-image im2col +
/// [`matmul_packed_into`] + bias broadcast — the exact op sequence of the
/// single-image im2col pipeline, so each image's result is bit-identical
/// to processing it alone.
///
/// `cols` is per-image im2col scratch (`c·kh·kw · oh·ow` floats) and
/// `pack_buf` the GEMM packing scratch; both are reused across the batch.
///
/// # Panics
///
/// Panics if a slice length disagrees with `batch`, `geom`, or the
/// packed weight dimensions.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_batch_into(
    images: &[f32],
    batch: usize,
    weight: &PackedA,
    bias: &[f32],
    geom: &Conv2dGeometry,
    out_c: usize,
    cols: &mut [f32],
    pack_buf: &mut Vec<f32>,
    out: &mut [f32],
) {
    let chw = geom.in_channels * geom.in_h * geom.in_w;
    assert_eq!(images.len(), batch * chw, "conv2d_batch_into images length");
    let k = geom.in_channels * geom.kernel_h * geom.kernel_w;
    assert_eq!(weight.m(), out_c, "conv2d_batch_into weight rows");
    assert_eq!(weight.k(), k, "conv2d_batch_into weight depth");
    assert_eq!(bias.len(), out_c, "conv2d_batch_into bias length");
    let area = geom.out_h() * geom.out_w();
    assert_eq!(cols.len(), k * area, "conv2d_batch_into cols length");
    assert_eq!(
        out.len(),
        batch * out_c * area,
        "conv2d_batch_into out length"
    );
    for (image, ob) in images
        .chunks_exact(chw)
        .zip(out.chunks_exact_mut(out_c * area))
    {
        im2col_into(image, geom, cols);
        matmul_packed_into(weight, cols, area, pack_buf, ob);
        for (oc, orow) in ob.chunks_exact_mut(area).enumerate() {
            let b = bias[oc];
            for o in orow.iter_mut() {
                *o += b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_simd_env_policy() {
        // Recognized spellings parse cleanly (no warning).
        for (value, want) in [
            (None, false),
            (Some(""), false),
            (Some("0"), false),
            (Some("false"), false),
            (Some("off"), false),
            (Some("1"), true),
            (Some("true"), true),
            (Some("ON"), true),
        ] {
            let (got, warning) = no_simd_env(value);
            assert_eq!(got, want, "{value:?}");
            assert!(warning.is_none(), "{value:?} must not warn: {warning:?}");
        }
        // Unrecognized spellings disable SIMD (conservative: the variable
        // was set) but surface a warning instead of silently guessing.
        for value in ["yes", "2", "simd off please"] {
            let (got, warning) = no_simd_env(Some(value));
            assert!(got, "{value:?} falls back to enabled");
            assert!(warning.is_some(), "{value:?} must warn");
        }
    }

    #[test]
    fn level_cap_env_parse_table() {
        let available = [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2];
        // Unset / empty: widest available, silently.
        for value in [None, Some("")] {
            let (level, warning) = level_cap_env(value, &available);
            assert_eq!(level, SimdLevel::Avx2);
            assert!(warning.is_none());
        }
        // A level this host can execute: honored, silently.
        let (level, warning) = level_cap_env(Some("sse2"), &available);
        assert_eq!(level, SimdLevel::Sse2);
        assert!(warning.is_none());
        // A known level the host cannot execute: widest, with a warning.
        let (level, warning) = level_cap_env(Some("avx512f"), &available);
        assert_eq!(level, SimdLevel::Avx2);
        assert!(warning.expect("must warn").contains("not executable"));
        // An unknown name: widest, with a warning listing valid names.
        let (level, warning) = level_cap_env(Some("avx9000"), &available);
        assert_eq!(level, SimdLevel::Avx2);
        let warning = warning.expect("must warn");
        assert!(warning.contains("known:"), "{warning}");
    }

    #[test]
    fn gemm_threads_env_parse_table() {
        // Valid values parse cleanly.
        for (value, want) in [(None, 1), (Some(""), 1), (Some("1"), 1), (Some("4"), 4)] {
            let (got, warning) = gemm_threads_env(value);
            assert_eq!(got, want, "{value:?}");
            assert!(warning.is_none(), "{value:?} must not warn: {warning:?}");
        }
        // Out-of-range and unparsable values fall back with a warning.
        let (got, warning) = gemm_threads_env(Some("0"));
        assert_eq!(got, 1);
        assert!(warning.expect("must warn").contains("out of range"));
        let (got, warning) = gemm_threads_env(Some("1000000"));
        assert_eq!(got, MAX_GEMM_THREADS);
        assert!(warning.expect("must warn").contains("clamping"));
        for value in ["four", "-2", "3.5", "4 threads"] {
            let (got, warning) = gemm_threads_env(Some(value));
            assert_eq!(got, 1, "{value:?} falls back to sequential");
            assert!(warning.is_some(), "{value:?} must warn");
        }
    }

    #[test]
    fn level_codes_round_trip() {
        for level in [
            SimdLevel::Scalar,
            SimdLevel::Sse2,
            SimdLevel::Avx2,
            SimdLevel::Avx512,
            SimdLevel::Neon,
        ] {
            assert_eq!(SimdLevel::from_code(level.code()), level);
        }
    }

    #[test]
    fn available_levels_start_scalar_and_widen() {
        let levels = available_levels();
        assert_eq!(levels[0], SimdLevel::Scalar);
        // Codes are ordered narrowest-to-widest within an architecture.
        assert!(!levels.is_empty());
    }
}
