//! Dense `f32` tensor substrate for the OPPSLA reproduction.
//!
//! The paper queries pre-trained PyTorch CNNs; this workspace has no GPU or
//! external ML runtime, so the classifier substrate is built from scratch.
//! This crate provides the numeric foundation: a contiguous row-major
//! [`Tensor`], [`Shape`] arithmetic, and the kernels ([`ops`]) needed to run
//! and train small convolutional networks (matrix products, im2col/col2im
//! convolution lowering, pooling).
//!
//! # Examples
//!
//! ```
//! use oppsla_tensor::{ops, Tensor};
//!
//! let a = Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0]);
//! let b = Tensor::from_vec([2, 2], vec![3.0, 4.0, 5.0, 6.0]);
//! assert_eq!(ops::matmul(&a, &b).data(), b.data());
//! ```

#![warn(missing_docs)]

mod shape;
mod tensor;

pub mod gemm;
pub mod ops;

pub use shape::Shape;
pub use tensor::Tensor;
