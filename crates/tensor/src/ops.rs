//! Numeric kernels: matrix multiplication, im2col/col2im convolution
//! lowering, and pooling.
//!
//! All image tensors use the NCHW layout: `[batch, channels, height, width]`.
//!
//! Every hot kernel comes in two forms: a slice-based `_into` primitive
//! that writes into a caller-provided buffer (allocation-free, used by the
//! inference workspace in `oppsla-nn`), and an allocating [`Tensor`]
//! wrapper that performs shape checks and delegates. The `_into` variants
//! perform the exact same arithmetic in the exact same order, so both
//! paths produce bit-identical results.

use crate::gemm;
use crate::Tensor;

/// Matrix product `A · B` into `out` for `A: [m, k]`, `B: [k, n]`,
/// `out: [m, n]`. Overwrites `out`.
///
/// # Panics
///
/// Panics if a slice length disagrees with the given dimensions.
pub fn matmul_into(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "matmul_into lhs length");
    assert_eq!(b.len(), k * n, "matmul_into rhs length");
    assert_eq!(out.len(), m * n, "matmul_into out length");
    out.fill(0.0);
    // ikj loop order keeps the innermost loop contiguous in both B and out
    // so it auto-vectorizes; A entries are dense weights, so no zero-skip.
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in arow.iter().enumerate() {
            let brow = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Matrix product `A · B` for `A: [m, k]`, `B: [k, n]`.
///
/// # Panics
///
/// Panics if either input is not rank 2 or the inner dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul lhs");
    let (k2, n) = dims2(b, "matmul rhs");
    assert_eq!(k, k2, "matmul inner dimensions disagree: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    matmul_into(a.data(), b.data(), m, k, n, &mut out);
    Tensor::from_vec([m, n], out)
}

/// Matrix product `Aᵀ · B` into `out` for `A: [k, m]`, `B: [k, n]`,
/// `out: [m, n]`, without materializing the transpose. Overwrites `out`.
///
/// # Panics
///
/// Panics if a slice length disagrees with the given dimensions.
pub fn matmul_tn_into(a: &[f32], b: &[f32], k: usize, m: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), k * m, "matmul_tn_into lhs length");
    assert_eq!(b.len(), k * n, "matmul_tn_into rhs length");
    assert_eq!(out.len(), m * n, "matmul_tn_into out length");
    out.fill(0.0);
    // No zero-skip on A entries: they are dense trained weights (or dense
    // upstream gradients), so a `== 0.0` test is a per-element branch the
    // predictor almost never wins — there is no sparsity to exploit.
    for kk in 0..k {
        let arow = &a[kk * m..(kk + 1) * m];
        let brow = &b[kk * n..(kk + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Matrix product `Aᵀ · B` for `A: [k, m]`, `B: [k, n]` without materializing
/// the transpose.
///
/// # Panics
///
/// Panics if either input is not rank 2 or the shared dimension disagrees.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = dims2(a, "matmul_tn lhs");
    let (k2, n) = dims2(b, "matmul_tn rhs");
    assert_eq!(k, k2, "matmul_tn shared dimensions disagree: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    matmul_tn_into(a.data(), b.data(), k, m, n, &mut out);
    Tensor::from_vec([m, n], out)
}

/// Matrix product `A · Bᵀ` into `out` for `A: [m, k]`, `B: [n, k]`,
/// `out: [m, n]`, without materializing the transpose. Overwrites `out`.
///
/// # Panics
///
/// Panics if a slice length disagrees with the given dimensions.
pub fn matmul_nt_into(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "matmul_nt_into lhs length");
    assert_eq!(b.len(), n * k, "matmul_nt_into rhs length");
    assert_eq!(out.len(), m * n, "matmul_nt_into out length");
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (&av, &bv) in arow.iter().zip(brow.iter()) {
                acc += av * bv;
            }
            out[i * n + j] = acc;
        }
    }
}

/// Matrix product `A · Bᵀ` for `A: [m, k]`, `B: [n, k]` without materializing
/// the transpose.
///
/// # Panics
///
/// Panics if either input is not rank 2 or the shared dimension disagrees.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul_nt lhs");
    let (n, k2) = dims2(b, "matmul_nt rhs");
    assert_eq!(k, k2, "matmul_nt shared dimensions disagree: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    matmul_nt_into(a.data(), b.data(), m, k, n, &mut out);
    Tensor::from_vec([m, n], out)
}

/// Geometry of a 2-D convolution or pooling window sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeometry {
    /// Input channel count.
    pub in_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Stride in both directions.
    pub stride: usize,
    /// Symmetric zero padding in both directions.
    pub padding: usize,
}

impl Conv2dGeometry {
    /// Output height after the sweep.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit in the padded input.
    pub fn out_h(&self) -> usize {
        sweep_extent(self.in_h, self.kernel_h, self.stride, self.padding)
    }

    /// Output width after the sweep.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit in the padded input.
    pub fn out_w(&self) -> usize {
        sweep_extent(self.in_w, self.kernel_w, self.stride, self.padding)
    }
}

fn sweep_extent(input: usize, kernel: usize, stride: usize, padding: usize) -> usize {
    let padded = input + 2 * padding;
    assert!(
        padded >= kernel,
        "kernel extent {kernel} larger than padded input {padded}"
    );
    (padded - kernel) / stride + 1
}

/// A half-open spatial rectangle `[y0, y1) × [x0, x1)`, used by the
/// region-restricted kernels to recompute only a dirty window of an
/// activation plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rect {
    /// First row (inclusive).
    pub y0: usize,
    /// Past-the-end row.
    pub y1: usize,
    /// First column (inclusive).
    pub x0: usize,
    /// Past-the-end column.
    pub x1: usize,
}

impl Rect {
    /// The full `[0, h) × [0, w)` extent.
    pub fn full(h: usize, w: usize) -> Self {
        Rect {
            y0: 0,
            y1: h,
            x0: 0,
            x1: w,
        }
    }

    /// True when the rectangle contains no cells.
    pub fn is_empty(&self) -> bool {
        self.y0 >= self.y1 || self.x0 >= self.x1
    }

    /// True when the rectangle covers all of `[0, h) × [0, w)`.
    pub fn covers(&self, h: usize, w: usize) -> bool {
        self.y0 == 0 && self.x0 == 0 && self.y1 >= h && self.x1 >= w
    }

    /// The bounding box of two rectangles (the smallest rectangle
    /// containing both) — the conservative union used by dirty-region
    /// propagation.
    pub fn union(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Rect {
            y0: self.y0.min(other.y0),
            y1: self.y1.max(other.y1),
            x0: self.x0.min(other.x0),
            x1: self.x1.max(other.x1),
        }
    }
}

/// Direct (im2col-free) convolution of an output sub-rectangle: recomputes
/// `out[oc, oy, ox]` for every `(oy, ox)` in `rect`, leaving all other
/// output cells untouched. `weight` is the flattened kernel bank
/// `[out_c, c·kh·kw]`, `bias` is `[out_c]`, and `out` is the full
/// `[out_c, oh, ow]` buffer.
///
/// Each output element is accumulated in the exact tap order of the
/// im2col row layout (`(ch, ky, kx)`-major) with the bias added last, and
/// out-of-bounds (zero-padding) taps are skipped. Skipping is bit-exact:
/// in IEEE-754 round-to-nearest an accumulator seeded with `+0.0` can
/// never become `-0.0`, so adding `w · 0.0 = ±0.0` is always the
/// identity. Results therefore match the im2col + [`matmul_into`] +
/// bias-broadcast pipeline bit for bit (asserted in tests).
///
/// # Panics
///
/// Panics if a slice length disagrees with `geom` or the rectangle
/// exceeds the output extents.
pub fn conv2d_region_into(
    image: &[f32],
    weight: &[f32],
    bias: &[f32],
    geom: &Conv2dGeometry,
    out_c: usize,
    rect: Rect,
    out: &mut [f32],
) {
    let (c, h, w) = (geom.in_channels, geom.in_h, geom.in_w);
    assert_eq!(image.len(), c * h * w, "conv2d_region_into image length");
    let (kh, kw) = (geom.kernel_h, geom.kernel_w);
    let k = c * kh * kw;
    assert_eq!(weight.len(), out_c * k, "conv2d_region_into weight length");
    assert_eq!(bias.len(), out_c, "conv2d_region_into bias length");
    let (oh, ow) = (geom.out_h(), geom.out_w());
    assert_eq!(out.len(), out_c * oh * ow, "conv2d_region_into out length");
    assert!(
        rect.y1 <= oh && rect.x1 <= ow,
        "rect {rect:?} exceeds output extents {oh}x{ow}"
    );
    if rect.is_empty() {
        return;
    }
    let (s, p) = (geom.stride, geom.padding);
    if s == 1 {
        // Stride 1: cells whose receptive fields are fully in bounds
        // (`oy, ox ∈ [p, extent + p - kernel + 1)`) have no per-tap
        // clamping at all, so the bulk of the rectangle runs the SIMD
        // interior-core kernel and only the padded edge strips take the
        // scalar reference path. Strips and core partition the rect, and
        // each cell computes the identical tap sequence either way.
        let yl = rect.y0.max(p);
        let yr = rect.y1.min((h + p).saturating_sub(kh - 1));
        let xl = rect.x0.max(p);
        let xr = rect.x1.min((w + p).saturating_sub(kw - 1));
        if yl < yr && xl < xr {
            let level = gemm::active_level();
            for strip in [
                Rect {
                    y0: rect.y0,
                    y1: yl,
                    x0: rect.x0,
                    x1: rect.x1,
                },
                Rect {
                    y0: yr,
                    y1: rect.y1,
                    x0: rect.x0,
                    x1: rect.x1,
                },
                Rect {
                    y0: yl,
                    y1: yr,
                    x0: rect.x0,
                    x1: xl,
                },
                Rect {
                    y0: yl,
                    y1: yr,
                    x0: xr,
                    x1: rect.x1,
                },
            ] {
                if !strip.is_empty() {
                    conv2d_region_scalar(image, weight, bias, geom, out_c, strip, out);
                }
            }
            let span = xr - xl;
            for oy in yl..yr {
                gemm::conv_direct_core_into(
                    level,
                    image,
                    c,
                    h,
                    w,
                    kh,
                    kw,
                    weight,
                    out_c,
                    oy - p,
                    xl - p,
                    span,
                    &mut out[oy * ow + xl..],
                    oh * ow,
                );
                for (oc, &b) in bias[..out_c].iter().enumerate() {
                    let obase = (oc * oh + oy) * ow;
                    for o in &mut out[obase + xl..obase + xr] {
                        *o += b;
                    }
                }
            }
            return;
        }
    }
    conv2d_region_scalar(image, weight, bias, geom, out_c, rect, out);
}

/// The scalar reference path of [`conv2d_region_into`]: per-tap bounds
/// clamping, valid-span accumulation, bias last. Kept as the fallback
/// for strided convolutions, padded edge strips, and the
/// `OPPSLA_NO_SIMD` escape hatch — and as the semantics the SIMD
/// interior core is verified against.
fn conv2d_region_scalar(
    image: &[f32],
    weight: &[f32],
    bias: &[f32],
    geom: &Conv2dGeometry,
    out_c: usize,
    rect: Rect,
    out: &mut [f32],
) {
    let (c, h, w) = (geom.in_channels, geom.in_h, geom.in_w);
    let (kh, kw) = (geom.kernel_h, geom.kernel_w);
    let k = c * kh * kw;
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let (s, p) = (geom.stride, geom.padding);
    for oc in 0..out_c {
        let wrow = &weight[oc * k..(oc + 1) * k];
        for oy in rect.y0..rect.y1 {
            let obase = (oc * oh + oy) * ow;
            let orow = &mut out[obase + rect.x0..obase + rect.x1];
            orow.fill(0.0);
            for ch in 0..c {
                for ky in 0..kh {
                    let iy = (oy * s + ky) as isize - p as isize;
                    if iy < 0 || iy as usize >= h {
                        continue;
                    }
                    let irow = &image[(ch * h + iy as usize) * w..(ch * h + iy as usize + 1) * w];
                    for kx in 0..kw {
                        if kx >= w + p {
                            continue;
                        }
                        let wt = wrow[(ch * kh + ky) * kw + kx];
                        // Valid columns: 0 <= ox·s + kx − p < w, clamped
                        // to the requested rectangle.
                        let lo = if p > kx { (p - kx).div_ceil(s) } else { 0 }.max(rect.x0);
                        let hi = (w + p - kx).div_ceil(s).min(rect.x1);
                        if lo >= hi {
                            continue;
                        }
                        let ibase = lo * s + kx - p;
                        if s == 1 {
                            for (o, &x) in orow[lo - rect.x0..hi - rect.x0]
                                .iter_mut()
                                .zip(&irow[ibase..ibase + (hi - lo)])
                            {
                                *o += wt * x;
                            }
                        } else {
                            for (i, o) in orow[lo - rect.x0..hi - rect.x0].iter_mut().enumerate() {
                                *o += wt * irow[ibase + i * s];
                            }
                        }
                    }
                }
            }
            let b = bias[oc];
            for o in orow.iter_mut() {
                *o += b;
            }
        }
    }
}

/// Unfolds one NCHW image `[c, h, w]` (as a flat slice) into a
/// `[c·kh·kw, oh·ow]` column matrix written into `out`. Overwrites `out`;
/// padding positions are zero-filled.
///
/// # Panics
///
/// Panics if a slice length disagrees with `geom`.
pub fn im2col_into(image: &[f32], geom: &Conv2dGeometry, out: &mut [f32]) {
    let (c, h, w) = (geom.in_channels, geom.in_h, geom.in_w);
    assert_eq!(image.len(), c * h * w, "im2col_into image length");
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let rows = c * geom.kernel_h * geom.kernel_w;
    let cols = oh * ow;
    assert_eq!(out.len(), rows * cols, "im2col_into out length");
    // Zero-fill first so out-of-bounds (padding) taps stay zero.
    out.fill(0.0);
    let (s, p) = (geom.stride, geom.padding);
    for ch in 0..c {
        for ky in 0..geom.kernel_h {
            for kx in 0..geom.kernel_w {
                let row = (ch * geom.kernel_h + ky) * geom.kernel_w + kx;
                for oy in 0..oh {
                    let iy = (oy * s + ky) as isize - p as isize;
                    if iy < 0 || iy as usize >= h {
                        continue;
                    }
                    let irow = &image[(ch * h + iy as usize) * w..(ch * h + iy as usize + 1) * w];
                    let orow = &mut out[row * cols + oy * ow..row * cols + (oy + 1) * ow];
                    if s == 1 {
                        // Stride 1: `ix = ox + kx - p` walks in lockstep
                        // with `ox`, so the in-bounds span is one copy.
                        let lo = (p as isize - kx as isize).clamp(0, ow as isize) as usize;
                        let hi =
                            (w as isize + p as isize - kx as isize).clamp(0, ow as isize) as usize;
                        if lo < hi {
                            let src = (lo + kx) as isize - p as isize;
                            orow[lo..hi]
                                .copy_from_slice(&irow[src as usize..src as usize + hi - lo]);
                        }
                    } else {
                        for (ox, o) in orow.iter_mut().enumerate() {
                            let ix = (ox * s + kx) as isize - p as isize;
                            if ix < 0 || ix as usize >= w {
                                continue;
                            }
                            *o = irow[ix as usize];
                        }
                    }
                }
            }
        }
    }
}

/// Unfolds only the output cells inside `rect` into columns of a shared
/// `[c·kh·kw, n]` column matrix, starting at column `col0`. Columns are
/// laid out row-major over the rectangle (`(oy, ox)` ascending), each in
/// the `(ch, ky, kx)`-major tap order of [`im2col_into`]; padding taps
/// are written as zero. Only the `rect.area()` columns starting at `col0`
/// are touched, so several callers can pack disjoint column ranges of the
/// same matrix — the batched delta path packs one range per candidate and
/// multiplies them with a single blocked GEMM.
///
/// # Panics
///
/// Panics if a slice length disagrees with `geom`, the rectangle exceeds
/// the output extents, or the column range `[col0, col0 + rect.area())`
/// does not fit in `n`.
pub fn im2col_region_into(
    image: &[f32],
    geom: &Conv2dGeometry,
    rect: Rect,
    col0: usize,
    n: usize,
    out: &mut [f32],
) {
    let (c, h, w) = (geom.in_channels, geom.in_h, geom.in_w);
    assert_eq!(image.len(), c * h * w, "im2col_region_into image length");
    let (kh, kw) = (geom.kernel_h, geom.kernel_w);
    let rows = c * kh * kw;
    assert_eq!(out.len(), rows * n, "im2col_region_into out length");
    let (oh, ow) = (geom.out_h(), geom.out_w());
    assert!(
        rect.y1 <= oh && rect.x1 <= ow,
        "rect {rect:?} exceeds output extents {oh}x{ow}"
    );
    if rect.is_empty() {
        return;
    }
    let area = (rect.y1 - rect.y0) * (rect.x1 - rect.x0);
    assert!(
        col0 + area <= n,
        "columns [{col0}, {}) exceed matrix width {n}",
        col0 + area
    );
    let (s, p) = (geom.stride, geom.padding);
    let rw = rect.x1 - rect.x0;
    if s == 1 {
        // Stride 1: `ix = ox + kx - p` walks in lockstep with `ox`, so a
        // (ky, kx) tap has one channel-independent in-bounds x-span and
        // one valid oy-span. The delta path calls this with tiny rects,
        // so hoisting the clamp arithmetic out of the channel loop and
        // emitting each row as zero-flank / copy / zero-flank (with
        // loop-based tiny fills, see `fill_zero`/`copy_row`) is where
        // the time goes — not in the copies themselves.
        for ky in 0..kh {
            let oy_lo =
                (p as isize - ky as isize).clamp(rect.y0 as isize, rect.y1 as isize) as usize;
            let oy_hi = (h as isize + p as isize - ky as isize)
                .clamp(rect.y0 as isize, rect.y1 as isize) as usize;
            for kx in 0..kw {
                let lo =
                    (p as isize - kx as isize).clamp(rect.x0 as isize, rect.x1 as isize) as usize;
                let hi = (w as isize + p as isize - kx as isize)
                    .clamp(rect.x0 as isize, rect.x1 as isize) as usize;
                let (zl, mid) = (lo - rect.x0, hi - lo);
                let src_x = if mid > 0 { lo + kx - p } else { 0 };
                for ch in 0..c {
                    let row = (ch * kh + ky) * kw + kx;
                    let orow = &mut out[row * n + col0..row * n + col0 + area];
                    let mut j = (oy_lo - rect.y0) * rw;
                    fill_zero(&mut orow[..j]);
                    for oy in oy_lo..oy_hi {
                        let isrc = (ch * h + (oy + ky - p)) * w + src_x;
                        fill_zero(&mut orow[j..j + zl]);
                        j += zl;
                        copy_row(&mut orow[j..j + mid], &image[isrc..isrc + mid]);
                        j += mid;
                        fill_zero(&mut orow[j..j + rw - zl - mid]);
                        j += rw - zl - mid;
                    }
                    fill_zero(&mut orow[j..]);
                }
            }
        }
        return;
    }
    for ch in 0..c {
        for ky in 0..kh {
            for kx in 0..kw {
                let row = (ch * kh + ky) * kw + kx;
                let orow = &mut out[row * n..(row + 1) * n];
                let mut j = col0;
                for oy in rect.y0..rect.y1 {
                    let iy = (oy * s + ky) as isize - p as isize;
                    if iy < 0 || iy as usize >= h {
                        orow[j..j + rw].fill(0.0);
                        j += rw;
                        continue;
                    }
                    let irow = &image[(ch * h + iy as usize) * w..(ch * h + iy as usize + 1) * w];
                    for ox in rect.x0..rect.x1 {
                        let ix = (ox * s + kx) as isize - p as isize;
                        orow[j] = if ix < 0 || ix as usize >= w {
                            0.0
                        } else {
                            irow[ix as usize]
                        };
                        j += 1;
                    }
                }
            }
        }
    }
}

const ZEROS_16: [f32; 16] = [0.0; 16];

/// Zero-fill tuned for the few-element flank spans the region ops
/// produce: short spans become two overlapping fixed-width stores (the
/// overlap rewrites the same zeros, so it is harmless) instead of a
/// libc `memset` call that costs more than the span itself. Long spans
/// fall back to `fill`.
#[inline(always)]
fn fill_zero(dst: &mut [f32]) {
    let len = dst.len();
    if len >= 32 {
        dst.fill(0.0);
    } else if len >= 16 {
        dst[..16].copy_from_slice(&ZEROS_16);
        dst[len - 16..].copy_from_slice(&ZEROS_16);
    } else if len >= 8 {
        dst[..8].copy_from_slice(&ZEROS_16[..8]);
        let t = len - 8;
        dst[t..].copy_from_slice(&ZEROS_16[..8]);
    } else if len >= 4 {
        dst[..4].copy_from_slice(&ZEROS_16[..4]);
        let t = len - 4;
        dst[t..].copy_from_slice(&ZEROS_16[..4]);
    } else {
        for o in dst {
            *o = 0.0;
        }
    }
}

/// Copy tuned like [`fill_zero`]: two overlapping fixed-width moves for
/// short spans (`src` and `dst` shift together, so the overlapped bytes
/// carry identical values), `copy_from_slice` for long ones. `dst` and
/// `src` must have equal lengths.
#[inline(always)]
fn copy_row(dst: &mut [f32], src: &[f32]) {
    let len = dst.len();
    if len >= 32 {
        dst.copy_from_slice(src);
    } else if len >= 16 {
        dst[..16].copy_from_slice(&src[..16]);
        let t = len - 16;
        dst[t..].copy_from_slice(&src[t..len]);
    } else if len >= 8 {
        dst[..8].copy_from_slice(&src[..8]);
        let t = len - 8;
        dst[t..].copy_from_slice(&src[t..len]);
    } else if len >= 4 {
        dst[..4].copy_from_slice(&src[..4]);
        let t = len - 4;
        dst[t..].copy_from_slice(&src[t..len]);
    } else {
        for (o, &v) in dst.iter_mut().zip(src) {
            *o = v;
        }
    }
}

/// Unfolds one NCHW image `[c, h, w]` into a `[c·kh·kw, oh·ow]` column
/// matrix so convolution lowers to a matrix product.
///
/// # Panics
///
/// Panics if `image` is not rank 3 or disagrees with `geom`.
pub fn im2col(image: &Tensor, geom: &Conv2dGeometry) -> Tensor {
    assert_eq!(image.shape().rank(), 3, "im2col expects a [c,h,w] tensor");
    let (c, h, w) = (
        image.shape().dim(0),
        image.shape().dim(1),
        image.shape().dim(2),
    );
    assert_eq!((c, h, w), (geom.in_channels, geom.in_h, geom.in_w));
    let rows = c * geom.kernel_h * geom.kernel_w;
    let cols = geom.out_h() * geom.out_w();
    let mut out = vec![0.0f32; rows * cols];
    im2col_into(image.data(), geom, &mut out);
    Tensor::from_vec([rows, cols], out)
}

/// Folds a `[c·kh·kw, oh·ow]` column matrix back into a `[c, h, w]` image,
/// accumulating overlapping contributions. This is the adjoint of [`im2col`]
/// and is used in the convolution backward pass.
///
/// # Panics
///
/// Panics if `cols` disagrees with `geom`.
pub fn col2im(cols: &Tensor, geom: &Conv2dGeometry) -> Tensor {
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let rows = geom.in_channels * geom.kernel_h * geom.kernel_w;
    assert_eq!(
        cols.shape().dims(),
        &[rows, oh * ow],
        "col2im input shape disagrees with geometry"
    );
    let (c, h, w) = (geom.in_channels, geom.in_h, geom.in_w);
    let mut out = vec![0.0f32; c * h * w];
    let data = cols.data();
    for ch in 0..c {
        for ky in 0..geom.kernel_h {
            for kx in 0..geom.kernel_w {
                let row = (ch * geom.kernel_h + ky) * geom.kernel_w + kx;
                for oy in 0..oh {
                    let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                    if iy < 0 || iy as usize >= h {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kx) as isize - geom.padding as isize;
                        if ix < 0 || ix as usize >= w {
                            continue;
                        }
                        out[(ch * h + iy as usize) * w + ix as usize] +=
                            data[row * (oh * ow) + oy * ow + ox];
                    }
                }
            }
        }
    }
    Tensor::from_vec([c, h, w], out)
}

/// Result of a max-pool forward pass: pooled values plus the flat source
/// index of every winner, needed for the backward scatter.
#[derive(Debug, Clone)]
pub struct MaxPoolOutput {
    /// Pooled `[n, c, oh, ow]` tensor.
    pub output: Tensor,
    /// For each output element, the flat index into the input that won.
    pub argmax: Vec<usize>,
}

/// Square max pooling (stride = window) over `channels` planes of `h`×`w`,
/// written into `out`. Batched input is handled by passing `n·c` as
/// `channels`. `argmax`, when given, receives the flat winner index per
/// output element (needed only by the training backward pass).
///
/// # Panics
///
/// Panics if a slice length disagrees with the given dimensions or the
/// window does not divide a spatial extent.
pub fn max_pool2d_into(
    input: &[f32],
    channels: usize,
    h: usize,
    w: usize,
    window: usize,
    out: &mut [f32],
    mut argmax: Option<&mut [usize]>,
) {
    assert!(
        h.is_multiple_of(window) && w.is_multiple_of(window),
        "pool window {window} does not divide spatial extent {h}x{w}"
    );
    assert_eq!(
        input.len(),
        channels * h * w,
        "max_pool2d_into input length"
    );
    let (oh, ow) = (h / window, w / window);
    assert_eq!(out.len(), channels * oh * ow, "max_pool2d_into out length");
    if let Some(am) = argmax.as_deref() {
        assert_eq!(am.len(), out.len(), "max_pool2d_into argmax length");
    }
    for ch in 0..channels {
        let base = ch * h * w;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0;
                for dy in 0..window {
                    for dx in 0..window {
                        let idx = base + (oy * window + dy) * w + (ox * window + dx);
                        if input[idx] > best {
                            best = input[idx];
                            best_idx = idx;
                        }
                    }
                }
                let oidx = (ch * oh + oy) * ow + ox;
                out[oidx] = best;
                if let Some(am) = argmax.as_deref_mut() {
                    am[oidx] = best_idx;
                }
            }
        }
    }
}

/// Region-restricted square max pooling (stride = window): recomputes
/// `out[ch, oy, ox]` for every `(oy, ox)` in `rect` (output coordinates),
/// leaving all other output cells untouched. Same window scan order as
/// [`max_pool2d_into`], so recomputed cells are bit-identical.
///
/// # Panics
///
/// Panics if a slice length disagrees with the given dimensions, the
/// window does not divide a spatial extent, or the rectangle exceeds the
/// output extents.
pub fn max_pool2d_region_into(
    input: &[f32],
    channels: usize,
    h: usize,
    w: usize,
    window: usize,
    rect: Rect,
    out: &mut [f32],
) {
    assert!(
        h.is_multiple_of(window) && w.is_multiple_of(window),
        "pool window {window} does not divide spatial extent {h}x{w}"
    );
    assert_eq!(
        input.len(),
        channels * h * w,
        "max_pool2d_region_into input length"
    );
    let (oh, ow) = (h / window, w / window);
    assert_eq!(
        out.len(),
        channels * oh * ow,
        "max_pool2d_region_into out length"
    );
    assert!(
        rect.y1 <= oh && rect.x1 <= ow,
        "rect {rect:?} exceeds output extents {oh}x{ow}"
    );
    if rect.is_empty() {
        return;
    }
    if window == 2 {
        // The ubiquitous 2×2 case: hoist the two input rows per output
        // row and unroll the window so the per-cell cost is four loads
        // and three compares, not re-derived index arithmetic. Same
        // scan order and strict-greater update as the generic loop, so
        // recomputed cells stay bit-identical (including NaN handling).
        for ch in 0..channels {
            let base = ch * h * w;
            for oy in rect.y0..rect.y1 {
                let r0 = &input[base + 2 * oy * w..base + 2 * oy * w + w];
                let r1 = &input[base + (2 * oy + 1) * w..base + (2 * oy + 1) * w + w];
                let orow = &mut out[(ch * oh + oy) * ow..(ch * oh + oy + 1) * ow];
                for (o, ox) in orow[rect.x0..rect.x1].iter_mut().zip(rect.x0..) {
                    let x = 2 * ox;
                    let mut best = f32::NEG_INFINITY;
                    for v in [r0[x], r0[x + 1], r1[x], r1[x + 1]] {
                        if v > best {
                            best = v;
                        }
                    }
                    *o = best;
                }
            }
        }
        return;
    }
    for ch in 0..channels {
        let base = ch * h * w;
        for oy in rect.y0..rect.y1 {
            for ox in rect.x0..rect.x1 {
                let mut best = f32::NEG_INFINITY;
                for dy in 0..window {
                    for dx in 0..window {
                        let v = input[base + (oy * window + dy) * w + (ox * window + dx)];
                        if v > best {
                            best = v;
                        }
                    }
                }
                out[(ch * oh + oy) * ow + ox] = best;
            }
        }
    }
}

/// 2×2 (or general square) max pooling with stride equal to the window size.
///
/// # Panics
///
/// Panics if `input` is not rank 4 or a spatial extent is not divisible by
/// `window`.
pub fn max_pool2d(input: &Tensor, window: usize) -> MaxPoolOutput {
    let (n, c, h, w) = dims4(input, "max_pool2d");
    assert!(
        h.is_multiple_of(window) && w.is_multiple_of(window),
        "pool window {window} does not divide spatial extent {h}x{w}"
    );
    let (oh, ow) = (h / window, w / window);
    let mut out = vec![0.0f32; n * c * oh * ow];
    let mut argmax = vec![0usize; out.len()];
    // Flat winner indices from the batched call match the per-tensor ones
    // because `channels = n·c` preserves the flat NCHW layout.
    max_pool2d_into(
        input.data(),
        n * c,
        h,
        w,
        window,
        &mut out,
        Some(&mut argmax),
    );
    MaxPoolOutput {
        output: Tensor::from_vec([n, c, oh, ow], out),
        argmax,
    }
}

/// Scatters output gradients back through a max pool recorded by
/// [`max_pool2d`].
///
/// # Panics
///
/// Panics if `grad_out` does not have one gradient per recorded winner.
pub fn max_pool2d_backward(
    grad_out: &Tensor,
    argmax: &[usize],
    input_shape: &crate::Shape,
) -> Tensor {
    assert_eq!(
        grad_out.numel(),
        argmax.len(),
        "gradient count {} does not match pooled element count {}",
        grad_out.numel(),
        argmax.len()
    );
    let mut grad_in = Tensor::zeros(input_shape.clone());
    let gi = grad_in.data_mut();
    for (&g, &src) in grad_out.data().iter().zip(argmax.iter()) {
        gi[src] += g;
    }
    grad_in
}

/// Global average pooling over `channels` planes of `h`×`w`, written into
/// `out` (one mean per plane). Batched input passes `n·c` as `channels`.
///
/// # Panics
///
/// Panics if a slice length disagrees with the given dimensions.
pub fn global_avg_pool_into(input: &[f32], channels: usize, h: usize, w: usize, out: &mut [f32]) {
    assert_eq!(
        input.len(),
        channels * h * w,
        "global_avg_pool_into input length"
    );
    assert_eq!(out.len(), channels, "global_avg_pool_into out length");
    let area = (h * w) as f32;
    for (ch, o) in out.iter_mut().enumerate() {
        let base = ch * h * w;
        *o = input[base..base + h * w].iter().sum::<f32>() / area;
    }
}

/// Global average pooling: `[n, c, h, w] → [n, c]`.
///
/// # Panics
///
/// Panics if `input` is not rank 4.
pub fn global_avg_pool(input: &Tensor) -> Tensor {
    let (n, c, h, w) = dims4(input, "global_avg_pool");
    let mut out = vec![0.0f32; n * c];
    global_avg_pool_into(input.data(), n * c, h, w, &mut out);
    Tensor::from_vec([n, c], out)
}

/// Backward pass of [`global_avg_pool`]: broadcasts each channel gradient
/// uniformly over its spatial extent.
///
/// # Panics
///
/// Panics if `grad_out` is not `[n, c]` matching `input_shape`.
pub fn global_avg_pool_backward(grad_out: &Tensor, input_shape: &crate::Shape) -> Tensor {
    assert_eq!(input_shape.rank(), 4);
    let (n, c, h, w) = (
        input_shape.dim(0),
        input_shape.dim(1),
        input_shape.dim(2),
        input_shape.dim(3),
    );
    assert_eq!(grad_out.shape().dims(), &[n, c]);
    let area = (h * w) as f32;
    let mut grad_in = Tensor::zeros(input_shape.clone());
    let gi = grad_in.data_mut();
    for img in 0..n {
        for ch in 0..c {
            let g = grad_out.data()[img * c + ch] / area;
            let base = (img * c + ch) * h * w;
            for v in &mut gi[base..base + h * w] {
                *v = g;
            }
        }
    }
    grad_in
}

fn dims2(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(
        t.shape().rank(),
        2,
        "{what} expects a rank-2 tensor, got {}",
        t.shape()
    );
    (t.shape().dim(0), t.shape().dim(1))
}

fn dims4(t: &Tensor, what: &str) -> (usize, usize, usize, usize) {
    assert_eq!(
        t.shape().rank(),
        4,
        "{what} expects a rank-4 tensor, got {}",
        t.shape()
    );
    (
        t.shape().dim(0),
        t.shape().dim(1),
        t.shape().dim(2),
        t.shape().dim(3),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec([3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Tensor::from_vec([3, 2], vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        let b = Tensor::from_vec([3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul_tn(&a, &b);
        // aᵀ = [[1,2,3],[4,5,6]]
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec([2, 3], vec![7.0, 9.0, 11.0, 8.0, 10.0, 12.0]);
        let c = matmul_nt(&a, &b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn conv_geometry_same_padding() {
        let g = Conv2dGeometry {
            in_channels: 3,
            in_h: 32,
            in_w: 32,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: 1,
        };
        assert_eq!((g.out_h(), g.out_w()), (32, 32));
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, no padding: im2col is just a reshape.
        let img = Tensor::from_fn([2, 2, 2], |i| i as f32);
        let g = Conv2dGeometry {
            in_channels: 2,
            in_h: 2,
            in_w: 2,
            kernel_h: 1,
            kernel_w: 1,
            stride: 1,
            padding: 0,
        };
        let cols = im2col(&img, &g);
        assert_eq!(cols.shape().dims(), &[2, 4]);
        assert_eq!(cols.data(), img.data());
    }

    #[test]
    fn im2col_padding_zero_fills() {
        let img = Tensor::ones([1, 1, 1]);
        let g = Conv2dGeometry {
            in_channels: 1,
            in_h: 1,
            in_w: 1,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: 1,
        };
        let cols = im2col(&img, &g);
        assert_eq!(cols.shape().dims(), &[9, 1]);
        // Only the kernel center overlaps the single real pixel.
        assert_eq!(cols.sum(), 1.0);
        assert_eq!(cols.data()[4], 1.0);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish x, y.
        let g = Conv2dGeometry {
            in_channels: 2,
            in_h: 4,
            in_w: 4,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: 1,
        };
        let x = Tensor::from_fn([2, 4, 4], |i| (i as f32 * 0.37).sin());
        let rows = 2 * 9;
        let cols_n = g.out_h() * g.out_w();
        let y = Tensor::from_fn([rows, cols_n], |i| (i as f32 * 0.11).cos());
        let ax = im2col(&x, &g);
        let aty = col2im(&y, &g);
        let lhs: f32 = ax.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(aty.data()).map(|(a, b)| a * b).sum();
        assert!(
            (lhs - rhs).abs() < 1e-3,
            "adjoint identity violated: {lhs} vs {rhs}"
        );
    }

    #[test]
    fn max_pool_picks_window_maxima() {
        let img = Tensor::from_vec([1, 1, 2, 4], vec![1.0, 5.0, 2.0, 0.0, 3.0, 4.0, -1.0, 9.0]);
        let pooled = max_pool2d(&img, 2);
        assert_eq!(pooled.output.data(), &[5.0, 9.0]);
        assert_eq!(pooled.argmax, vec![1, 7]);
    }

    #[test]
    fn max_pool_backward_scatters_to_winners() {
        let img = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let pooled = max_pool2d(&img, 2);
        let grad = Tensor::from_vec([1, 1, 1, 1], vec![10.0]);
        let gi = max_pool2d_backward(&grad, &pooled.argmax, img.shape());
        assert_eq!(gi.data(), &[0.0, 0.0, 0.0, 10.0]);
    }

    #[test]
    fn into_variants_match_allocating_kernels() {
        let a = Tensor::from_fn([4, 3], |i| (i as f32 * 0.7).sin());
        let b = Tensor::from_fn([3, 5], |i| (i as f32 * 0.3).cos());
        let mut out = vec![f32::NAN; 4 * 5];
        matmul_into(a.data(), b.data(), 4, 3, 5, &mut out);
        assert_eq!(out, matmul(&a, &b).data());

        let at = Tensor::from_fn([3, 4], |i| (i as f32 * 0.7).sin());
        matmul_tn_into(at.data(), b.data(), 3, 4, 5, &mut out);
        assert_eq!(out, matmul_tn(&at, &b).data());

        let bt = Tensor::from_fn([5, 3], |i| (i as f32 * 0.3).cos());
        matmul_nt_into(a.data(), bt.data(), 4, 3, 5, &mut out);
        assert_eq!(out, matmul_nt(&a, &bt).data());
    }

    #[test]
    fn im2col_into_zero_fills_padding_in_reused_buffer() {
        let img = Tensor::from_fn([2, 4, 4], |i| (i as f32 * 0.37).sin());
        let g = Conv2dGeometry {
            in_channels: 2,
            in_h: 4,
            in_w: 4,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: 1,
        };
        let expected = im2col(&img, &g);
        // Poison the buffer to prove padding positions are re-zeroed.
        let mut out = vec![f32::NAN; expected.numel()];
        im2col_into(img.data(), &g, &mut out);
        assert_eq!(out, expected.data());
    }

    #[test]
    fn pooling_into_matches_allocating_kernels() {
        let img = Tensor::from_fn([2, 3, 4, 4], |i| (i as f32 * 0.51).sin());
        let pooled = max_pool2d(&img, 2);
        let mut out = vec![f32::NAN; pooled.output.numel()];
        let mut argmax = vec![0usize; out.len()];
        max_pool2d_into(img.data(), 6, 4, 4, 2, &mut out, Some(&mut argmax));
        assert_eq!(out, pooled.output.data());
        assert_eq!(argmax, pooled.argmax);
        // The argmax-free form is what inference uses.
        max_pool2d_into(img.data(), 6, 4, 4, 2, &mut out, None);
        assert_eq!(out, pooled.output.data());

        let gap = global_avg_pool(&img);
        let mut gout = vec![f32::NAN; 6];
        global_avg_pool_into(img.data(), 6, 4, 4, &mut gout);
        assert_eq!(gout, gap.data());
    }

    /// The full engine's conv pipeline: im2col, matmul, bias broadcast.
    fn conv_via_im2col(
        image: &[f32],
        weight: &[f32],
        bias: &[f32],
        geom: &Conv2dGeometry,
        out_c: usize,
    ) -> Vec<f32> {
        let k = geom.in_channels * geom.kernel_h * geom.kernel_w;
        let area = geom.out_h() * geom.out_w();
        let mut cols = vec![0.0f32; k * area];
        im2col_into(image, geom, &mut cols);
        let mut out = vec![0.0f32; out_c * area];
        matmul_into(weight, &cols, out_c, k, area, &mut out);
        for oc in 0..out_c {
            let b = bias[oc];
            for v in &mut out[oc * area..(oc + 1) * area] {
                *v += b;
            }
        }
        out
    }

    #[test]
    fn conv_region_full_rect_is_bit_identical_to_im2col_pipeline() {
        for (kernel, padding, stride) in [(3, 1, 1), (5, 2, 1), (1, 0, 1), (3, 0, 2), (3, 2, 1)] {
            let geom = Conv2dGeometry {
                in_channels: 3,
                in_h: 8,
                in_w: 8,
                kernel_h: kernel,
                kernel_w: kernel,
                stride,
                padding,
            };
            let out_c = 4;
            let image: Vec<f32> = (0..3 * 8 * 8).map(|i| (i as f32 * 0.37).sin()).collect();
            let k = 3 * kernel * kernel;
            let weight: Vec<f32> = (0..out_c * k).map(|i| (i as f32 * 0.19).cos()).collect();
            let bias: Vec<f32> = (0..out_c).map(|i| i as f32 * 0.3 - 0.5).collect();
            let expected = conv_via_im2col(&image, &weight, &bias, &geom, out_c);
            let mut out = vec![f32::NAN; expected.len()];
            let full = Rect::full(geom.out_h(), geom.out_w());
            conv2d_region_into(&image, &weight, &bias, &geom, out_c, full, &mut out);
            assert_eq!(out, expected, "k={kernel} p={padding} s={stride}");
        }
    }

    #[test]
    fn conv_region_partial_rect_updates_only_the_window() {
        let geom = Conv2dGeometry {
            in_channels: 2,
            in_h: 6,
            in_w: 6,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: 1,
        };
        let out_c = 3;
        let image: Vec<f32> = (0..2 * 36).map(|i| (i as f32 * 0.51).sin()).collect();
        let weight: Vec<f32> = (0..out_c * 18).map(|i| (i as f32 * 0.23).cos()).collect();
        let bias = vec![0.1, -0.2, 0.3];
        let expected = conv_via_im2col(&image, &weight, &bias, &geom, out_c);
        let (oh, ow) = (geom.out_h(), geom.out_w());
        let rect = Rect {
            y0: 1,
            y1: 4,
            x0: 2,
            x1: 5,
        };
        let mut out = vec![f32::NAN; expected.len()];
        conv2d_region_into(&image, &weight, &bias, &geom, out_c, rect, &mut out);
        for oc in 0..out_c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let idx = (oc * oh + oy) * ow + ox;
                    let inside = oy >= rect.y0 && oy < rect.y1 && ox >= rect.x0 && ox < rect.x1;
                    if inside {
                        assert_eq!(out[idx], expected[idx], "({oc},{oy},{ox})");
                    } else {
                        assert!(out[idx].is_nan(), "({oc},{oy},{ox}) was touched");
                    }
                }
            }
        }
    }

    #[test]
    fn pool_region_matches_full_pool() {
        let input: Vec<f32> = (0..3 * 8 * 8).map(|i| (i as f32 * 0.71).sin()).collect();
        let mut expected = vec![0.0f32; 3 * 16];
        max_pool2d_into(&input, 3, 8, 8, 2, &mut expected, None);

        let mut out = vec![f32::NAN; expected.len()];
        max_pool2d_region_into(&input, 3, 8, 8, 2, Rect::full(4, 4), &mut out);
        assert_eq!(out, expected);

        let rect = Rect {
            y0: 1,
            y1: 3,
            x0: 0,
            x1: 2,
        };
        let mut partial = vec![f32::NAN; expected.len()];
        max_pool2d_region_into(&input, 3, 8, 8, 2, rect, &mut partial);
        for ch in 0..3 {
            for oy in 0..4 {
                for ox in 0..4 {
                    let idx = (ch * 4 + oy) * 4 + ox;
                    if (1..3).contains(&oy) && ox < 2 {
                        assert_eq!(partial[idx], expected[idx]);
                    } else {
                        assert!(partial[idx].is_nan());
                    }
                }
            }
        }
    }

    #[test]
    fn rect_union_and_covers() {
        let a = Rect {
            y0: 1,
            y1: 3,
            x0: 2,
            x1: 4,
        };
        let b = Rect {
            y0: 2,
            y1: 5,
            x0: 0,
            x1: 3,
        };
        assert_eq!(
            a.union(&b),
            Rect {
                y0: 1,
                y1: 5,
                x0: 0,
                x1: 4
            }
        );
        let empty = Rect {
            y0: 2,
            y1: 2,
            x0: 0,
            x1: 4,
        };
        assert!(empty.is_empty());
        assert_eq!(empty.union(&a), a);
        assert_eq!(a.union(&empty), a);
        assert!(Rect::full(5, 7).covers(5, 7));
        assert!(!a.covers(5, 7));
    }

    #[test]
    fn global_avg_pool_and_backward() {
        let img = Tensor::from_vec([1, 2, 1, 2], vec![1.0, 3.0, 10.0, 20.0]);
        let pooled = global_avg_pool(&img);
        assert_eq!(pooled.data(), &[2.0, 15.0]);
        let grad = Tensor::from_vec([1, 2], vec![4.0, 8.0]);
        let gi = global_avg_pool_backward(&grad, img.shape());
        assert_eq!(gi.data(), &[2.0, 2.0, 4.0, 4.0]);
    }
}
