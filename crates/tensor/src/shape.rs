//! Tensor shapes and row-major stride computation.

use std::fmt;

/// The shape of a dense row-major tensor: a list of dimension extents.
///
/// A `Shape` is a thin, validated wrapper around `Vec<usize>`. Rank-0
/// (scalar) shapes are allowed and have one element.
///
/// # Examples
///
/// ```
/// use oppsla_tensor::Shape;
///
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimension extents.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero (empty tensors are not supported) or if
    /// the total element count would overflow `usize`.
    pub fn new(dims: Vec<usize>) -> Self {
        let mut numel = 1usize;
        for (i, &d) in dims.iter().enumerate() {
            assert!(d > 0, "shape dimension {i} is zero");
            numel = numel
                .checked_mul(d)
                .expect("shape element count overflows usize");
        }
        Shape(dims)
    }

    /// The number of dimensions (rank) of the shape.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// The extent of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// All dimension extents.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// The total number of elements.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major strides, innermost dimension last.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// The flat row-major offset of a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any coordinate is out of
    /// bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.0.len(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.0.len()
        );
        let mut off = 0;
        let strides = self.strides();
        for (axis, (&i, &d)) in index.iter().zip(self.0.iter()).enumerate() {
            assert!(
                i < d,
                "index {i} out of bounds for axis {axis} (extent {d})"
            );
            off += i * strides[axis];
        }
        off
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::new(vec![]);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
        assert!(s.strides().is_empty());
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offset_walks_row_major() {
        let s = Shape::new(vec![2, 3]);
        assert_eq!(s.offset(&[0, 0]), 0);
        assert_eq!(s.offset(&[0, 2]), 2);
        assert_eq!(s.offset(&[1, 0]), 3);
        assert_eq!(s.offset(&[1, 2]), 5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_rejects_out_of_bounds() {
        Shape::new(vec![2, 3]).offset(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "dimension 1 is zero")]
    fn zero_dim_rejected() {
        Shape::new(vec![2, 0]);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Shape::new(vec![3, 32, 32]).to_string(), "[3x32x32]");
    }
}
