//! The dense `f32` tensor type.

use crate::Shape;
use std::fmt;

/// A dense, row-major, heap-allocated `f32` tensor.
///
/// `Tensor` is the value type flowing through the network substrate. It is
/// deliberately simple: contiguous storage, eager operations, panics on
/// shape mismatches (mismatches are programming errors in this codebase,
/// not recoverable conditions).
///
/// # Examples
///
/// ```
/// use oppsla_tensor::Tensor;
///
/// let a = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]);
/// let b = Tensor::full([2, 2], 10.0);
/// let c = a.add(&b);
/// assert_eq!(c.data(), &[11.0, 12.0, 13.0, 14.0]);
/// ```
#[derive(Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 0.0)
    }

    /// Creates a tensor of ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let data = vec![value; shape.numel()];
        Tensor { shape, data }
    }

    /// Creates a tensor from existing row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the shape's element count.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.numel(),
            "data length {} does not match shape {} ({} elements)",
            data.len(),
            shape,
            shape.numel()
        );
        Tensor { shape, data }
    }

    /// Creates a tensor by evaluating `f` at every flat index.
    pub fn from_fn(shape: impl Into<Shape>, mut f: impl FnMut(usize) -> f32) -> Self {
        let shape = shape.into();
        let data = (0..shape.numel()).map(&mut f).collect();
        Tensor { shape, data }
    }

    /// Creates a rank-0 scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::new(vec![]),
            data: vec![value],
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// A view of the underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// A mutable view of the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its row-major data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// The element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is invalid.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// A mutable reference to the element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is invalid.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// The single element of a rank-0 or one-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.numel(),
            1,
            "item() on tensor with {} elements",
            self.numel()
        );
        self.data[0]
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            self.numel(),
            "cannot reshape {} elements into shape {}",
            self.numel(),
            shape
        );
        Tensor {
            shape,
            data: self.data.clone(),
        }
    }

    /// Applies `f` elementwise, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().copied().map(f).collect(),
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Combines two same-shaped tensors elementwise.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        self.assert_same_shape(other);
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Elementwise sum.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise product.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// Adds `other * s` into `self` in place (`axpy`).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_scaled_inplace(&mut self, other: &Tensor, s: f32) {
        self.assert_same_shape(other);
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b * s;
        }
    }

    /// The sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// The arithmetic mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.numel() as f32
    }

    /// The maximum element.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// The minimum element.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// The flat index of the maximum element (first on ties).
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// True when every element is finite (no NaN / infinity).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    fn assert_same_shape(&self, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch: {} vs {}",
            self.shape, other.shape
        );
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const PREVIEW: usize = 8;
        write!(f, "Tensor({}, [", self.shape)?;
        for (i, v) in self.data.iter().take(PREVIEW).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        if self.data.len() > PREVIEW {
            write!(f, ", …")?;
        }
        write!(f, "])")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_fill_as_expected() {
        assert!(Tensor::zeros([2, 2]).data().iter().all(|&v| v == 0.0));
        assert!(Tensor::ones([3]).data().iter().all(|&v| v == 1.0));
        assert_eq!(Tensor::full([2], 7.0).data(), &[7.0, 7.0]);
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }

    #[test]
    fn from_fn_uses_flat_index() {
        let t = Tensor::from_fn([2, 2], |i| i as f32);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn indexing_is_row_major() {
        let t = Tensor::from_vec([2, 3], vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(t.at(&[1, 1]), 4.0);
        let mut t = t;
        *t.at_mut(&[0, 2]) = 9.0;
        assert_eq!(t.at(&[0, 2]), 9.0);
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = Tensor::from_vec([2], vec![1.0, 2.0]);
        let b = Tensor::from_vec([2], vec![3.0, 5.0]);
        assert_eq!(a.add(&b).data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).data(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[3.0, 10.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
    }

    #[test]
    fn add_scaled_inplace_is_axpy() {
        let mut a = Tensor::from_vec([2], vec![1.0, 1.0]);
        let b = Tensor::from_vec([2], vec![2.0, 4.0]);
        a.add_scaled_inplace(&b, 0.5);
        assert_eq!(a.data(), &[2.0, 3.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec([4], vec![-1.0, 3.0, 2.0, 3.0]);
        assert_eq!(t.sum(), 7.0);
        assert_eq!(t.mean(), 1.75);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -1.0);
        assert_eq!(t.argmax(), 1, "argmax returns the first maximum");
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec([2, 3], vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let r = t.reshape([3, 2]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.shape().dims(), &[3, 2]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_rejects_shape_mismatch() {
        Tensor::zeros([2]).add(&Tensor::zeros([3]));
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut t = Tensor::zeros([2]);
        assert!(t.is_finite());
        t.data_mut()[1] = f32::NAN;
        assert!(!t.is_finite());
    }
}
