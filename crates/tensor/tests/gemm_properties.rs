//! The packed GEMM's determinism contract: [`matmul_packed_into`] and
//! the batched conv kernels are **bit-identical** to the naive reference
//! kernels — exact `to_bits` equality, not tolerance — across shapes that
//! are deliberately not multiples of the block sizes (MR/NR/KC/MC/NC),
//! so every ragged-edge path in the packing and micro-kernel is hit.

use oppsla_tensor::gemm::{
    conv2d_batch_into, im2col_batch_into, matmul_packed_into, pack_a, KC, MC, MR, NC, NR,
};
use oppsla_tensor::ops::{im2col_into, matmul_into, Conv2dGeometry};
use proptest::prelude::*;

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Shared harness: multiply with both kernels, demand exact equality.
fn assert_packed_matches_naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    let mut naive = vec![f32::NAN; m * n];
    matmul_into(a, b, m, k, n, &mut naive);
    let packed = pack_a(a, m, k);
    let mut pack_buf = Vec::new();
    let mut out = vec![f32::NAN; m * n];
    matmul_packed_into(&packed, b, n, &mut pack_buf, &mut out);
    assert_eq!(
        bits(&out),
        bits(&naive),
        "packed GEMM diverged from naive at m={m} k={k} n={n}"
    );
}

fn lcg_data(len: usize, seed: u32) -> Vec<f32> {
    let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            ((state >> 8) as f32 / (1 << 24) as f32) * 4.0 - 2.0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Exact equality on small odd shapes: every m, k, n remainder path.
    #[test]
    fn packed_matches_naive_odd_shapes(
        m in 1usize..40,
        k in 1usize..40,
        n in 1usize..40,
        seed in any::<u32>(),
    ) {
        let a = lcg_data(m * k, seed);
        let b = lcg_data(k * n, seed.wrapping_add(17));
        assert_packed_matches_naive(&a, &b, m, k, n);
    }

    /// A reused pack buffer never leaks state between differently shaped
    /// multiplications.
    #[test]
    fn pack_buf_reuse_is_stateless(
        m1 in 1usize..24, k1 in 1usize..24, n1 in 1usize..24,
        m2 in 1usize..24, k2 in 1usize..24, n2 in 1usize..24,
        seed in any::<u32>(),
    ) {
        let mut pack_buf = Vec::new();
        for (m, k, n, s) in [(m1, k1, n1, seed), (m2, k2, n2, seed ^ 0xabcd)] {
            let a = lcg_data(m * k, s);
            let b = lcg_data(k * n, s.wrapping_add(3));
            let mut naive = vec![0.0; m * n];
            matmul_into(&a, &b, m, k, n, &mut naive);
            let packed = pack_a(&a, m, k);
            let mut out = vec![0.0; m * n];
            matmul_packed_into(&packed, &b, n, &mut pack_buf, &mut out);
            prop_assert_eq!(bits(&out), bits(&naive));
        }
    }

    /// Batched conv == per-image im2col + naive matmul + bias, bit for bit.
    #[test]
    fn conv_batch_matches_per_image(
        batch in 1usize..5,
        c in 1usize..3,
        hw in 3usize..8,
        kernel in 1usize..4,
        padding in 0usize..2,
        out_c in 1usize..6,
        seed in any::<u32>(),
    ) {
        let geom = Conv2dGeometry {
            in_channels: c,
            in_h: hw,
            in_w: hw,
            kernel_h: kernel,
            kernel_w: kernel,
            stride: 1,
            padding,
        };
        let k = c * kernel * kernel;
        let area = geom.out_h() * geom.out_w();
        let images = lcg_data(batch * c * hw * hw, seed);
        let weight = lcg_data(out_c * k, seed.wrapping_add(5));
        let bias = lcg_data(out_c, seed.wrapping_add(9));

        let mut reference = vec![0.0; batch * out_c * area];
        let mut cols = vec![0.0; k * area];
        for (image, ob) in images
            .chunks_exact(c * hw * hw)
            .zip(reference.chunks_exact_mut(out_c * area))
        {
            im2col_into(image, &geom, &mut cols);
            matmul_into(&weight, &cols, out_c, k, area, ob);
            for (oc, orow) in ob.chunks_exact_mut(area).enumerate() {
                for o in orow.iter_mut() {
                    *o += bias[oc];
                }
            }
        }

        let packed = pack_a(&weight, out_c, k);
        let mut pack_buf = Vec::new();
        let mut out = vec![0.0; batch * out_c * area];
        conv2d_batch_into(
            &images, batch, &packed, &bias, &geom, out_c, &mut cols, &mut pack_buf, &mut out,
        );
        prop_assert_eq!(bits(&out), bits(&reference));
    }

    /// Batched im2col == per-image im2col, concatenated.
    #[test]
    fn im2col_batch_matches_per_image(
        batch in 1usize..5,
        c in 1usize..3,
        hw in 3usize..8,
        kernel in 1usize..4,
        seed in any::<u32>(),
    ) {
        let geom = Conv2dGeometry {
            in_channels: c,
            in_h: hw,
            in_w: hw,
            kernel_h: kernel,
            kernel_w: kernel,
            stride: 1,
            padding: 0,
        };
        let chw = c * hw * hw;
        let per = c * kernel * kernel * geom.out_h() * geom.out_w();
        let images = lcg_data(batch * chw, seed);
        let mut batched = vec![0.0; batch * per];
        im2col_batch_into(&images, batch, &geom, &mut batched);
        for b in 0..batch {
            let mut one = vec![0.0; per];
            im2col_into(&images[b * chw..(b + 1) * chw], &geom, &mut one);
            prop_assert_eq!(bits(&one), bits(&batched[b * per..(b + 1) * per]).clone());
        }
    }
}

/// Shapes that cross every cache-block boundary (k > KC forces multi-slab
/// accumulation with the C-tile round trip; m > MC, n > NC exercise the
/// outer blocking loops). Deterministic, one case each — these are the
/// shapes proptest's small ranges cannot reach.
#[test]
fn packed_matches_naive_across_block_boundaries() {
    for (m, k, n) in [
        (MC + 3, KC + 7, NC + 5),
        (2 * MR + 1, 2 * KC + 1, NR + 1),
        (1, KC + 1, 1),
        (MC, KC, NC),
    ] {
        let a = lcg_data(m * k, (m * 31 + k * 7 + n) as u32);
        let b = lcg_data(k * n, (m + k + n * 13) as u32);
        assert_packed_matches_naive(&a, &b, m, k, n);
    }
}

/// The degenerate k = 0 product is the zero matrix on both paths.
#[test]
fn packed_handles_empty_k() {
    let packed = pack_a(&[], 3, 0);
    let mut out = vec![f32::NAN; 6];
    matmul_packed_into(&packed, &[], 2, &mut Vec::new(), &mut out);
    assert!(out.iter().all(|&x| x == 0.0));
}
