//! The dispatch half of the GEMM determinism contract: every SIMD level
//! the host can detect and every worker-thread count produce output
//! **bit-identical** to the scalar single-threaded kernel — exact
//! `to_bits` equality across ragged shapes, so lane tails, partial
//! panels, and per-worker column partitions are all exercised.

use oppsla_tensor::gemm::{
    available_levels, linear_nt_into_with, matmul_packed_into_with, pack_a, SimdLevel, KC, MC, NC,
    NR,
};
use oppsla_tensor::ops::{matmul_into, matmul_nt_into};
use proptest::prelude::*;

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn lcg_data(len: usize, seed: u32) -> Vec<f32> {
    let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            ((state >> 8) as f32 / (1 << 24) as f32) * 4.0 - 2.0
        })
        .collect()
}

/// Runs one (level, threads) configuration and demands exact equality
/// with the naive kernel.
fn assert_config_matches_naive(
    level: SimdLevel,
    threads: usize,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
) {
    let mut naive = vec![f32::NAN; m * n];
    matmul_into(a, b, m, k, n, &mut naive);
    let packed = pack_a(a, m, k);
    let mut pack_buf = Vec::new();
    let mut out = vec![f32::NAN; m * n];
    matmul_packed_into_with(level, threads, &packed, b, n, &mut pack_buf, &mut out);
    assert_eq!(
        bits(&out),
        bits(&naive),
        "GEMM diverged from naive at level={} threads={threads} m={m} k={k} n={n}",
        level.as_str()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every detected ISA level matches the naive kernel bit-for-bit on
    /// odd shapes (lane tails: n % NR hits every partial-register path).
    #[test]
    fn simd_levels_match_naive_odd_shapes(
        m in 1usize..24,
        k in 1usize..48,
        n in 1usize..40,
        seed in any::<u32>(),
    ) {
        let a = lcg_data(m * k, seed);
        let b = lcg_data(k * n, seed.wrapping_add(29));
        for level in available_levels() {
            assert_config_matches_naive(level, 1, &a, &b, m, k, n);
        }
    }

    /// The vector-matrix Linear kernel matches the naive `m = 1`
    /// row-major-weights kernel bit-for-bit at every detected ISA level,
    /// across ragged widths (4-register blocks, single-register blocks,
    /// and the scalar lane tail).
    #[test]
    fn linear_kernel_matches_naive(
        k in 1usize..96,
        n in 1usize..130,
        seed in any::<u32>(),
    ) {
        let x = lcg_data(k, seed);
        let w = lcg_data(n * k, seed.wrapping_add(71)); // [n, k] row-major
        let mut wt = vec![0.0f32; k * n]; // [k, n]: the plan-compiled layout
        for j in 0..n {
            for kk in 0..k {
                wt[kk * n + j] = w[j * k + kk];
            }
        }
        let mut naive = vec![f32::NAN; n];
        matmul_nt_into(&x, &w, 1, k, n, &mut naive);
        for level in available_levels() {
            let mut out = vec![f32::NAN; n];
            linear_nt_into_with(level, &x, &wt, k, n, &mut out);
            prop_assert_eq!(
                bits(&out),
                bits(&naive),
                "Linear kernel diverged from naive at level={} k={} n={}",
                level.as_str(), k, n
            );
        }
    }
}

/// Deterministic block-boundary shapes per level — multi-slab k (the
/// C-tile f32 round trip under SIMD loads/stores) and multi-panel n.
#[test]
fn simd_levels_match_naive_across_block_boundaries() {
    for (m, k, n) in [
        (MC + 3, KC + 7, NC + 5),
        (5, 2 * KC + 1, NR + 1),
        (1, KC + 1, 1),
    ] {
        let a = lcg_data(m * k, (m * 31 + k * 7 + n) as u32);
        let b = lcg_data(k * n, (m + k + n * 13) as u32);
        for level in available_levels() {
            assert_config_matches_naive(level, 1, &a, &b, m, k, n);
        }
    }
}

/// Threaded GEMM is byte-identical to single-threaded for every worker
/// count, on a product large enough to actually fan out (several NC
/// column blocks, above the parallel threshold) — including a ragged
/// final column block and more workers than blocks.
#[test]
fn threaded_gemm_is_deterministic() {
    let (m, k, n) = (2 * MC + 3, KC + 9, 3 * NC + 37);
    let a = lcg_data(m * k, 0xfeed);
    let b = lcg_data(k * n, 0xbeef);
    let packed = pack_a(&a, m, k);
    let level = *available_levels().last().unwrap();

    let mut reference = vec![f32::NAN; m * n];
    matmul_packed_into_with(level, 1, &packed, &b, n, &mut Vec::new(), &mut reference);
    let mut naive = vec![f32::NAN; m * n];
    matmul_into(&a, &b, m, k, n, &mut naive);
    assert_eq!(bits(&reference), bits(&naive));

    for threads in [2, 3, 4, 8, 64] {
        let mut out = vec![f32::NAN; m * n];
        matmul_packed_into_with(level, threads, &packed, &b, n, &mut Vec::new(), &mut out);
        assert_eq!(
            bits(&out),
            bits(&reference),
            "threaded GEMM diverged at threads={threads}"
        );
    }
}

/// The scalar level and the widest detected level agree even when run
/// threaded — the combined SIMD × threading matrix holds.
#[test]
fn simd_and_threads_compose() {
    let (m, k, n) = (MC + 1, KC + 3, 2 * NC + 11);
    let a = lcg_data(m * k, 0x5eed);
    let b = lcg_data(k * n, 0xd00d);
    let packed = pack_a(&a, m, k);
    let mut reference = vec![f32::NAN; m * n];
    matmul_packed_into_with(
        SimdLevel::Scalar,
        1,
        &packed,
        &b,
        n,
        &mut Vec::new(),
        &mut reference,
    );
    for level in available_levels() {
        for threads in [1, 4] {
            let mut out = vec![f32::NAN; m * n];
            matmul_packed_into_with(level, threads, &packed, &b, n, &mut Vec::new(), &mut out);
            assert_eq!(
                bits(&out),
                bits(&reference),
                "level={} threads={threads} diverged",
                level.as_str()
            );
        }
    }
}
