//! Property-based tests of the numeric kernels: algebraic identities of
//! the matmul variants and the im2col/col2im adjoint pair, over random
//! shapes and data.

use oppsla_tensor::ops::{self, col2im, im2col, matmul, matmul_nt, matmul_tn, Conv2dGeometry};
use oppsla_tensor::Tensor;
use proptest::prelude::*;

fn arb_tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec([rows, cols], data))
}

fn close(a: &Tensor, b: &Tensor, tol: f32) -> bool {
    a.shape() == b.shape()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

fn transpose(t: &Tensor) -> Tensor {
    let (r, c) = (t.shape().dim(0), t.shape().dim(1));
    Tensor::from_fn([c, r], |i| t.at(&[i % r, i / r]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// matmul distributes over addition: A(B + C) = AB + AC.
    #[test]
    fn matmul_distributes(
        a in arb_tensor(3, 4),
        b in arb_tensor(4, 5),
        c in arb_tensor(4, 5),
    ) {
        let lhs = matmul(&a, &b.add(&c));
        let rhs = matmul(&a, &b).add(&matmul(&a, &c));
        prop_assert!(close(&lhs, &rhs, 1e-4), "{lhs:?} vs {rhs:?}");
    }

    /// matmul_tn(A, B) = matmul(Aᵀ, B).
    #[test]
    fn tn_matches_explicit_transpose(a in arb_tensor(4, 3), b in arb_tensor(4, 5)) {
        let fused = matmul_tn(&a, &b);
        let explicit = matmul(&transpose(&a), &b);
        prop_assert!(close(&fused, &explicit, 1e-4));
    }

    /// matmul_nt(A, B) = matmul(A, Bᵀ).
    #[test]
    fn nt_matches_explicit_transpose(a in arb_tensor(3, 4), b in arb_tensor(5, 4)) {
        let fused = matmul_nt(&a, &b);
        let explicit = matmul(&a, &transpose(&b));
        prop_assert!(close(&fused, &explicit, 1e-4));
    }

    /// Identity matrices are neutral on both sides.
    #[test]
    fn identity_is_neutral(a in arb_tensor(4, 4)) {
        let eye = Tensor::from_fn([4, 4], |i| if i / 4 == i % 4 { 1.0 } else { 0.0 });
        prop_assert!(close(&matmul(&a, &eye), &a, 1e-5));
        prop_assert!(close(&matmul(&eye, &a), &a, 1e-5));
    }

    /// <im2col(x), y> = <x, col2im(y)> for random geometry (adjointness —
    /// exactly the property the conv backward pass relies on).
    #[test]
    fn im2col_col2im_are_adjoint(
        c in 1usize..3,
        hw in 3usize..7,
        kernel in 1usize..4,
        padding in 0usize..2,
        seed in any::<u32>(),
    ) {
        let geom = Conv2dGeometry {
            in_channels: c,
            in_h: hw,
            in_w: hw,
            kernel_h: kernel,
            kernel_w: kernel,
            stride: 1,
            padding,
        };
        prop_assume!(hw + 2 * padding >= kernel);
        let x = Tensor::from_fn([c, hw, hw], |i| {
            ((i as u32).wrapping_mul(seed | 1) % 1000) as f32 / 500.0 - 1.0
        });
        let rows = c * kernel * kernel;
        let cols = geom.out_h() * geom.out_w();
        let y = Tensor::from_fn([rows, cols], |i| {
            ((i as u32).wrapping_mul(seed.rotate_left(7) | 1) % 1000) as f32 / 500.0 - 1.0
        });
        let lhs: f64 = im2col(&x, &geom)
            .data()
            .iter()
            .zip(y.data())
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        let rhs: f64 = x
            .data()
            .iter()
            .zip(col2im(&y, &geom).data())
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        prop_assert!((lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    /// Max pooling: output elements are maxima of their windows, argmax
    /// indices point at elements with that value.
    #[test]
    fn max_pool_invariants(data in proptest::collection::vec(-5.0f32..5.0, 2 * 4 * 4)) {
        let input = Tensor::from_vec([1, 2, 4, 4], data);
        let pooled = ops::max_pool2d(&input, 2);
        prop_assert_eq!(pooled.output.shape().dims(), &[1, 2, 2, 2]);
        for (i, &src) in pooled.argmax.iter().enumerate() {
            prop_assert_eq!(input.data()[src], pooled.output.data()[i]);
        }
        // Every output is >= all 4 of its window entries: check via sum of
        // indicators (the winner is in the window by construction of the
        // kernel; here we just sanity-check monotony against the input max).
        prop_assert!(pooled.output.max() <= input.max() + 1e-6);
    }

    /// Global average pooling preserves the grand mean.
    #[test]
    fn global_avg_pool_preserves_mean(data in proptest::collection::vec(-5.0f32..5.0, 3 * 4 * 4)) {
        let input = Tensor::from_vec([1, 3, 4, 4], data);
        let pooled = ops::global_avg_pool(&input);
        prop_assert!((pooled.mean() - input.mean()).abs() < 1e-4);
    }
}
