//! Attack a real trained CNN from the zoo, comparing OPPSLA's synthesized
//! program against Sparse-RS and the fixed-prioritization baseline on the
//! same images — a miniature of the paper's Figure 3 setting.
//!
//! ```text
//! cargo run --release --example attack_cnn
//! ```
//!
//! The first run trains and caches a small VGG-family classifier on the
//! synthetic `shapes32` dataset (a few seconds); later runs load it from
//! `target/oppsla-models/`.

use oppsla_attacks::{Attack, SketchProgramAttack, SparseRs, SparseRsConfig};
use oppsla_core::dsl::GrammarConfig;
use oppsla_core::dsl::Program;
use oppsla_core::synth::SynthConfig;
use oppsla_eval::curves::evaluate_attack;
use oppsla_eval::report::{fmt_rate, fmt_stat, Table};
use oppsla_eval::suite::{synthesize_suite, SuiteAttack};
use oppsla_eval::zoo::{attack_test_set, train_or_load, Scale, ZooConfig};
use oppsla_nn::models::Arch;

fn main() {
    let model = train_or_load(Arch::VggSmall, Scale::Cifar, &ZooConfig::default());
    println!(
        "classifier: {} (clean test accuracy {:.1}%)",
        model.arch(),
        model.test_accuracy * 100.0
    );

    // Synthesize a per-class program suite from a small training set.
    let train = attack_test_set(Scale::Cifar, 2, 7);
    let synth = SynthConfig {
        max_iterations: 6,
        beta: 0.01,
        seed: 0,
        per_image_budget: Some(600),
        prefilter: true,
        grammar: GrammarConfig::paper(),
        threads: 1,
    };
    println!(
        "synthesizing per-class programs ({} MH iterations each)…",
        synth.max_iterations
    );
    let (suite, _) = synthesize_suite(&model, &train, 10, &synth);
    for (class, program) in suite.programs().iter().enumerate().take(3) {
        println!("  class {class}: {program}");
    }

    // Evaluate three attacks on held-out images.
    let test = attack_test_set(Scale::Cifar, 2, 999);
    let budget = 4096;
    let attacks: Vec<Box<dyn Attack>> = vec![
        Box::new(SuiteAttack::new(suite)),
        Box::new(SketchProgramAttack::named(
            Program::constant(false),
            "sketch+false",
        )),
        Box::new(SparseRs::new(SparseRsConfig {
            max_iterations: budget,
            ..SparseRsConfig::default()
        })),
    ];

    let mut table = Table::new(
        format!(
            "one-pixel attacks on {} ({} test images, budget {budget})",
            model.arch(),
            test.len()
        ),
        vec![
            "Attack".into(),
            "Success rate".into(),
            "Success @100".into(),
            "Avg #queries".into(),
            "Median".into(),
        ],
    );
    for attack in &attacks {
        let eval = evaluate_attack(attack.as_ref(), &model, &test, budget, 0);
        table.push_row(vec![
            attack.name().to_owned(),
            fmt_rate(eval.success_rate()),
            fmt_rate(eval.success_rate_at(100)),
            fmt_stat(eval.avg_queries()),
            fmt_stat(eval.median_queries()),
        ]);
    }
    println!("{table}");
}
