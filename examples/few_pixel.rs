//! Few-pixel attacks: when one pixel is not enough, the `k`-pixel form of
//! Sparse-RS (an extension beyond the paper's one-pixel evaluation) can
//! still break the classifier.
//!
//! ```text
//! cargo run --release --example few_pixel
//! ```

use oppsla::attacks::{SparseRsMulti, SparseRsMultiConfig};
use oppsla::core::image::Image;
use oppsla::core::oracle::{FnClassifier, Oracle};
use oppsla::core::pair::{Location, Pixel};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // A classifier that only flips when at least three pixels are pure
    // white — robust to every one-pixel attack by construction.
    let classifier = FnClassifier::new(2, |img: &Image| {
        let mut whites = 0usize;
        for row in 0..img.height() as u16 {
            for col in 0..img.width() as u16 {
                if img.pixel(Location::new(row, col)) == Pixel([1.0, 1.0, 1.0]) {
                    whites += 1;
                }
            }
        }
        if whites >= 3 {
            vec![0.1, 0.9]
        } else {
            let conf = 0.9 - 0.1 * whites as f32;
            vec![conf, 1.0 - conf]
        }
    });
    let victim = Image::filled(10, 10, Pixel([0.35, 0.4, 0.45]));

    for k in [1usize, 2, 3, 4] {
        let attack = SparseRsMulti::new(SparseRsMultiConfig {
            k,
            max_iterations: 20_000,
            ..SparseRsMultiConfig::default()
        });
        let mut oracle = Oracle::new(&classifier);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let outcome = attack.attack(&mut oracle, &victim, 0, &mut rng);
        println!("k = {k}: {outcome}");
        if let oppsla::attacks::MultiAttackOutcome::Success { pixels, .. } = &outcome {
            for (loc, pixel) in pixels {
                println!("    {loc} <- {pixel}");
            }
        }
        // One- and two-pixel attacks cannot beat a three-white threshold.
        assert_eq!(outcome.is_success(), k >= 3, "k = {k}");
    }
    println!("\nthree simultaneous pixels succeed where one and two provably cannot.");
}
