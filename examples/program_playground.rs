//! Playground for the condition language: write adversarial programs in
//! the paper's concrete syntax, parse them, mutate them the way the
//! synthesizer does, and watch how each one prioritizes candidates.
//!
//! ```text
//! cargo run --release --example program_playground
//! ```

use oppsla_core::dsl::{is_well_typed, mutate, parse_program, random_program, ImageDims, Program};
use oppsla_core::image::Image;
use oppsla_core::oracle::{FnClassifier, Oracle};
use oppsla_core::pair::{Location, Pixel};
use oppsla_core::sketch::run_sketch;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // 1. Parse a program written in the paper's concrete syntax (this is
    //    the running example from Section 3.2).
    let source = "\
        B1: score_diff(N(x), N(x[l<-p]), c_x) < 0.21; \
        B2: max(x_l) > 0.19; \
        B3: score_diff(N(x), N(x[l<-p]), c_x) > 0.25; \
        B4: center(l) < 8";
    let program = parse_program(source).expect("the paper's example parses");
    println!("parsed:   {program}");
    assert_eq!(program, Program::paper_example());

    // 2. Round-trip through the pretty-printer.
    let reparsed = parse_program(&program.to_string()).expect("display round-trips");
    assert_eq!(program, reparsed);
    println!("round-trips through parse ∘ display ✓");

    // 3. Mutate it the way the Metropolis-Hastings search does. Every
    //    mutant is well-typed by construction.
    let dims = ImageDims::new(32, 32);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut current = program;
    println!("\nfive MH-style mutations:");
    for step in 1..=5 {
        current = mutate(&mut rng, &current, dims);
        assert!(is_well_typed(&current, dims));
        println!("  {step}: {current}");
    }

    // 4. Show that different programs spend different query counts on the
    //    same weakness (the paper's core observation: success is shared,
    //    cost is not).
    let classifier = FnClassifier::new(2, |img: &Image| {
        if img.pixel(Location::new(10, 10)) == Pixel([0.0, 0.0, 0.0]) {
            vec![0.1, 0.9]
        } else {
            vec![0.9, 0.1]
        }
    });
    let victim = Image::filled(32, 32, Pixel([0.55, 0.5, 0.45]));
    println!("\nquery cost of several programs against the same weakness:");
    let mut programs = vec![
        ("sketch+false".to_owned(), Program::constant(false)),
        ("paper example".to_owned(), Program::paper_example()),
    ];
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    for i in 0..3 {
        programs.push((format!("random #{i}"), random_program(&mut rng, dims)));
    }
    for (name, program) in &programs {
        let mut oracle = Oracle::new(&classifier);
        let outcome = run_sketch(program, &mut oracle, &victim, 0);
        println!(
            "  {name:<14} -> {} queries (success: {})",
            outcome.queries(),
            outcome.is_success()
        );
        assert!(outcome.is_success(), "the sketch is exhaustive");
    }
}
