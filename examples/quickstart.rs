//! Quickstart: synthesize a one-pixel adversarial program with OPPSLA and
//! use it to attack a classifier — all on a toy black-box classifier, so
//! this runs in well under a second.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use oppsla_core::dsl::GrammarConfig;
use oppsla_core::dsl::Program;
use oppsla_core::image::Image;
use oppsla_core::oracle::{Classifier, FnClassifier, Oracle};
use oppsla_core::pair::{Location, Pixel};
use oppsla_core::sketch::run_sketch;
use oppsla_core::synth::{evaluate_program, synthesize, SynthConfig};

fn main() {
    // A black-box classifier with a one-pixel weakness: any white pixel in
    // the central 3x3 region flips its decision. We only interact with it
    // through score queries, exactly like the paper's threat model.
    let classifier = FnClassifier::new(2, |img: &Image| {
        for row in 3..6u16 {
            for col in 3..6u16 {
                if img.pixel(Location::new(row, col)) == Pixel([1.0, 1.0, 1.0]) {
                    return vec![0.2, 0.8];
                }
            }
        }
        vec![0.8, 0.2]
    });

    // A small training set of class-0 images.
    let train: Vec<(Image, usize)> = (0..4)
        .map(|i| {
            let v = 0.3 + 0.05 * i as f32;
            (Image::filled(9, 9, Pixel([v, v, v])), 0)
        })
        .collect();

    // 1. The fixed-prioritization baseline: the sketch with all conditions
    //    set to false.
    let fixed = Program::constant(false);
    let fixed_eval = evaluate_program(&fixed, &classifier, &train, None);
    println!(
        "Sketch+False baseline: avg {:.1} queries",
        fixed_eval.avg_queries
    );

    // 2. Synthesize a program with OPPSLA (Metropolis-Hastings over the
    //    condition language).
    let config = SynthConfig {
        max_iterations: 30,
        beta: 0.05,
        seed: 42,
        per_image_budget: None,
        prefilter: false,
        grammar: GrammarConfig::paper(),
        threads: 1,
    };
    let report = synthesize(&classifier, &train, &config);
    println!(
        "OPPSLA: avg {:.1} queries after {} iterations ({} synthesis queries)",
        evaluate_program(&report.program, &classifier, &train, None).avg_queries,
        config.max_iterations,
        report.total_queries,
    );
    println!("synthesized program: {}", report.program);

    // 3. Attack a fresh image with the synthesized program.
    let victim = Image::filled(9, 9, Pixel([0.45, 0.45, 0.45]));
    assert_eq!(
        classifier.classify(&victim),
        0,
        "victim starts correctly classified"
    );
    let mut oracle = Oracle::new(&classifier);
    let outcome = run_sketch(&report.program, &mut oracle, &victim, 0);
    match outcome {
        oppsla_core::sketch::SketchOutcome::Success { pair, queries } => {
            println!(
                "attack succeeded: set pixel {} -> {} ({queries} queries)",
                pair.location, pair.corner
            );
            let adversarial = victim.with_pixel(pair.location, pair.corner.as_pixel());
            assert_ne!(classifier.classify(&adversarial), 0);
            println!(
                "classifier now answers class {}",
                classifier.classify(&adversarial)
            );
        }
        other => println!("attack did not succeed: {other:?}"),
    }
}
