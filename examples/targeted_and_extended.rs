//! The two extensions beyond the paper, in one demo:
//!
//! 1. **Targeted attacks** — force the classifier to a *specific* wrong
//!    class instead of any misclassification.
//! 2. **The extended condition grammar** — synthesize programs with
//!    boolean combinators (`!`, `&&`, `||`) instead of only the paper's
//!    atomic comparisons.
//!
//! ```text
//! cargo run --release --example targeted_and_extended
//! ```

use oppsla::core::dsl::{parse_condition, random_program_in, GrammarConfig, ImageDims, Program};
use oppsla::core::goal::AttackGoal;
use oppsla::core::image::Image;
use oppsla::core::oracle::{FnClassifier, Oracle};
use oppsla::core::pair::{Location, Pixel};
use oppsla::core::sketch::run_sketch_with_goal;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // A 3-class black box: white pixel near the top-left flips to class 1,
    // black pixel near the bottom-right flips to class 2.
    let classifier = FnClassifier::new(3, |img: &Image| {
        if img.pixel(Location::new(2, 2)) == Pixel([1.0, 1.0, 1.0]) {
            vec![0.1, 0.8, 0.1]
        } else if img.pixel(Location::new(9, 9)) == Pixel([0.0, 0.0, 0.0]) {
            vec![0.1, 0.1, 0.8]
        } else {
            vec![0.8, 0.1, 0.1]
        }
    });
    let victim = Image::filled(12, 12, Pixel([0.45, 0.5, 0.55]));

    // --- Targeted attacks -------------------------------------------------
    println!("targeted attacks (fixed-prioritization program):");
    for goal in [
        AttackGoal::Untargeted,
        AttackGoal::Targeted(1),
        AttackGoal::Targeted(2),
    ] {
        let mut oracle = Oracle::new(&classifier);
        let outcome =
            run_sketch_with_goal(&Program::constant(false), &mut oracle, &victim, 0, goal);
        match outcome {
            oppsla::core::sketch::SketchOutcome::Success { pair, queries } => {
                println!(
                    "  {goal:<12} -> pixel {} = {} after {queries} queries",
                    pair.location, pair.corner
                );
            }
            other => println!("  {goal:<12} -> {other:?}"),
        }
    }

    // --- Extended grammar -------------------------------------------------
    println!("\nextended-grammar conditions (boolean combinators):");
    // Hand-written, in concrete syntax:
    let fancy = parse_condition("(center(l) < 4 || center(l) > 10) && !(avg(x_l) > 0.9)")
        .expect("extended syntax parses");
    println!("  parsed: {fancy}");
    println!("  depth {} / {} AST nodes", fancy.depth(), fancy.size());

    // Randomly sampled, the way an extended synthesis run would:
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let grammar = GrammarConfig::extended(3);
    let dims = ImageDims::new(12, 12);
    for i in 0..3 {
        let program = random_program_in(&mut rng, dims, grammar);
        println!("  sampled program #{i}: {program}");
        // Extended programs run through the very same sketch…
        let mut oracle = Oracle::new(&classifier);
        let outcome =
            run_sketch_with_goal(&program, &mut oracle, &victim, 0, AttackGoal::Untargeted);
        println!(
            "    -> success {} in {} queries",
            outcome.is_success(),
            outcome.queries()
        );
        assert!(
            outcome.is_success(),
            "the sketch stays exhaustive under any grammar"
        );
    }
}
