//! Transferability in miniature (the paper's Table 1): synthesize a
//! program suite for one classifier, then attack a *different* classifier
//! with it and compare query counts against that classifier's own suite.
//!
//! ```text
//! cargo run --release --example transfer_programs
//! ```

use oppsla_core::dsl::GrammarConfig;
use oppsla_core::oracle::Classifier;
use oppsla_core::synth::SynthConfig;
use oppsla_eval::suite::synthesize_suite;
use oppsla_eval::transfer::{run_transfer, transfer_table};
use oppsla_eval::zoo::{attack_test_set, train_or_load, Scale, ZooConfig};
use oppsla_nn::models::Arch;

fn main() {
    let config = ZooConfig::default();
    let archs = [Arch::VggSmall, Arch::ResNetSmall];
    let models: Vec<_> = archs
        .iter()
        .map(|&arch| {
            let m = train_or_load(arch, Scale::Cifar, &config);
            println!(
                "{}: clean accuracy {:.1}%",
                m.arch(),
                m.test_accuracy * 100.0
            );
            m
        })
        .collect();

    let train = attack_test_set(Scale::Cifar, 2, 7);
    let synth = SynthConfig {
        max_iterations: 5,
        beta: 0.01,
        seed: 0,
        per_image_budget: Some(600),
        prefilter: true,
        grammar: GrammarConfig::paper(),
        threads: 1,
    };
    let suites: Vec<_> = models
        .iter()
        .map(|m| {
            println!("synthesizing suite for {}…", m.arch());
            synthesize_suite(m, &train, m.num_classes(), &synth).0
        })
        .collect();

    let labels: Vec<String> = archs.iter().map(|a| a.id().to_owned()).collect();
    let classifiers: Vec<&dyn Classifier> = models.iter().map(|m| m as &dyn Classifier).collect();
    let test = attack_test_set(Scale::Cifar, 1, 999);
    let result = run_transfer(&labels, &classifiers, &suites, &test, 4096, 0);
    println!("{}", transfer_table(&result));
    println!(
        "Reading the table: column = which classifier the programs were \
         synthesized for; row = which classifier is attacked. The diagonal \
         is the self-attack baseline; transfer typically costs somewhat \
         more queries but stays far below exhaustive search."
    );
}
