#!/usr/bin/env sh
# Builds the workspace in release mode and writes the forward-pass
# microbenchmark reports to BENCH_forward.json, BENCH_incremental.json
# and BENCH_batched.json at the repo root.
#
# Usage: scripts/bench_forward.sh [extra forward_bench flags...]
# e.g.:  scripts/bench_forward.sh --iters 1000 --threads 4
set -eu

cd "$(dirname "$0")/.."
cargo build --release -p oppsla-bench
exec target/release/forward_bench --out BENCH_forward.json \
    --inc-out BENCH_incremental.json --batched-out BENCH_batched.json "$@"
