#!/usr/bin/env sh
# Gates a freshly measured forward_bench report against a committed
# baseline. Absolute nanoseconds depend on the machine, so the gate
# compares only the relative `*_speedup` ratios (engine vs. tape,
# incremental vs. full forward, batched vs. sequential delta), which
# divide machine speed out.
#
# Individual rows are noisy at the short CI config (single ratios swing
# by 2x run-to-run on one machine), but a real regression — losing a
# fast path rather than a scheduler hiccup — drags every row down at
# once. So per-row drops only warn; the gate FAILS when the geometric
# mean of new/baseline ratios across a report drops more than the
# allowed regression (25% by default, tightened/loosened with
# --max-regression PCT — the deterministic search-efficiency report
# uses 10), or when a baseline row is missing from the new report.
#
# With --require-improvement the gate flips from regression detection to
# improvement enforcement: the geometric mean of new/baseline ratios must
# come out strictly above 1.0 or the gate FAILS. CI uses this mode to
# compare a SIMD-enabled run against a scalar (`OPPSLA_NO_SIMD=1`) run of
# the same build on the same runner, proving the fast kernels actually
# pay for themselves rather than merely not regressing.
#
# Independently of mode, any `engine_speedup` row for densenet-small in
# the NEW report must be >= 1.0: the compiled engine losing to the naive
# tape on any architecture means a dispatch route picked the wrong
# kernel, which no amount of run-to-run noise excuses.
#
# Usage: scripts/bench_gate.sh [--require-improvement] [--max-regression PCT] \
#            NEW.json BASELINE.json
# e.g.:  scripts/bench_gate.sh fresh/BENCH_batched.json BENCH_batched.json
#
# The reports are the one-row-per-line JSON emitted by the bench
# binaries; parsing sticks to POSIX awk so the gate runs anywhere sh
# does. Fields the gate does not know about are ignored: a report from a
# newer binary may carry extra fields, and a report *missing* an
# optional field the gate can check (like trace_hook_ns_per_op) warns
# instead of failing — older binaries' reports stay gateable.
set -eu

require=0
maxreg=25
while :; do
    case "${1:-}" in
        --require-improvement)
            require=1
            shift
            ;;
        --max-regression)
            maxreg=${2:?--max-regression needs a percentage}
            shift 2
            ;;
        *)
            break
            ;;
    esac
done
case "$maxreg" in
    ''|*[!0-9]*)
        echo "bench_gate: --max-regression expects an integer percentage, got '$maxreg'" >&2
        exit 2
        ;;
esac
if [ $# -ne 2 ]; then
    echo "usage: $0 [--require-improvement] [--max-regression PCT] NEW.json BASELINE.json" >&2
    exit 2
fi
new=$1
base=$2
[ -r "$new" ] || { echo "bench_gate: cannot read $new" >&2; exit 2; }
[ -r "$base" ] || { echo "bench_gate: cannot read $base" >&2; exit 2; }

# Zero-cost-when-off gate for the trace hooks: a forward report built
# without the `trace` feature must report the disarmed query hook as an
# exact 0.0 ns — anything else means the hooks stopped compiling out.
# The field is optional (older binaries never wrote it): a report that
# does not carry it at all only warns, so the gate keeps working on
# reports from binaries that predate — or postdate — the field.
if grep -q '"trace_enabled": false' "$new"; then
    if ! grep -q '"trace_hook_ns_per_op"' "$new"; then
        echo "warn     $new has trace_enabled: false but no trace_hook_ns_per_op field (optional; skipping the zero-cost check)"
    elif ! grep -q '"trace_hook_ns_per_op": 0.0' "$new"; then
        echo "FAIL     trace feature is off but trace_hook_ns_per_op is nonzero in $new" >&2
        exit 1
    fi
fi

awk -v newfile="$new" -v basefile="$base" -v require="$require" -v maxreg="$maxreg" '
function extract(line, field,    tmp) {
    tmp = line
    sub(".*\"" field "\": *\"", "", tmp)
    sub("\".*", "", tmp)
    return tmp
}
function scan(file, vals,    line, arch, input, rest, pair, k, a) {
    while ((getline line < file) > 0) {
        if (line !~ /"arch"/) continue
        arch = extract(line, "arch")
        input = extract(line, "input")
        rest = line
        while (match(rest, /"[a-z_]*_speedup": *-?[0-9.eE+]+/)) {
            pair = substr(rest, RSTART, RLENGTH)
            rest = substr(rest, RSTART + RLENGTH)
            split(pair, a, /: */)
            k = a[1]
            gsub(/"/, "", k)
            vals[arch "|" input "|" k] = a[2] + 0
        }
    }
    close(file)
}
BEGIN {
    scan(basefile, basevals)
    scan(newfile, newvals)
    floor = 1 - maxreg / 100
    status = 0
    compared = 0
    logsum = 0
    for (key in basevals) {
        if (!(key in newvals)) {
            printf "MISSING  %s (in baseline, not in %s)\n", key, newfile
            status = 1
            continue
        }
        b = basevals[key]
        n = newvals[key]
        if (b <= 0 || n <= 0) continue
        compared++
        ratio = n / b
        logsum += log(ratio)
        if (ratio < floor) {
            printf "WARN     %-60s %.3f -> %.3f (%.0f%% of baseline)\n", key, b, n, ratio * 100
        } else if (ratio < 1.0) {
            printf "warn     %-60s %.3f -> %.3f (%.0f%% of baseline)\n", key, b, n, ratio * 100
        } else {
            printf "ok       %-60s %.3f -> %.3f\n", key, b, n
        }
    }
    # The engine must never lose to the naive tape: a sub-1.0
    # engine_speedup on densenet-small is a routing bug, not noise.
    for (key in newvals) {
        if (key ~ /^densenet-small\|/ && key ~ /\|engine_speedup$/ && newvals[key] < 1.0) {
            printf "FAIL     %-60s %.3f < 1.0 (engine slower than tape)\n", key, newvals[key]
            status = 1
        }
    }
    if (compared == 0) {
        print "bench_gate: no comparable *_speedup metrics found" > "/dev/stderr"
        exit 1
    }
    geomean = exp(logsum / compared)
    if (require && geomean <= 1.0) {
        printf "FAIL     geometric mean of %d speedup ratios is %.0f%% of baseline (improvement required)\n", compared, geomean * 100
        status = 1
    } else if (geomean < floor) {
        printf "FAIL     geometric mean of %d speedup ratios is %.0f%% of baseline (>%d%% regression)\n", compared, geomean * 100, maxreg
        status = 1
    } else if (geomean < 1.0) {
        printf "WARN     geometric mean of %d speedup ratios is %.0f%% of baseline\n", compared, geomean * 100
    } else {
        printf "OK       geometric mean of %d speedup ratios is %.0f%% of baseline\n", compared, geomean * 100
    }
    exit status
}
'
