#!/usr/bin/env sh
# The full local gate: release build, test suite (including the opt-in
# query-guard feature), and clippy with warnings denied.
#
# Clippy is scoped to the oppsla crates: the vendored stubs under
# vendor/ are workspace members but not ours to lint.
#
# Usage: scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace
cargo test -q -p oppsla-core --features query-guard
# The telemetry feature is additive but changes what is compiled in, so
# the instrumented crates get their own test pass. Per-package (not
# --workspace): the vendored stubs have no such feature.
cargo test -q -p oppsla-obs -p oppsla-core -p oppsla-nn -p oppsla-attacks \
    -p oppsla-eval -p oppsla-bench --features telemetry
cargo clippy -p oppsla-tensor -p oppsla-obs -p oppsla-core -p oppsla-nn \
    -p oppsla-data -p oppsla-attacks -p oppsla-eval -p oppsla-bench \
    --tests -- -D warnings
echo "check.sh: all green"
