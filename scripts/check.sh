#!/usr/bin/env sh
# The full local gate: formatting, release build (including the
# examples), test suite (including the opt-in query-guard feature), and
# clippy with warnings denied.
#
# Formatting and clippy are scoped to the oppsla crates: the vendored
# stubs under vendor/ are workspace members but not ours to lint.
#
# Usage: scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

OPPSLA_PKGS="-p oppsla -p oppsla-tensor -p oppsla-obs -p oppsla-core \
    -p oppsla-nn -p oppsla-data -p oppsla-attacks -p oppsla-eval \
    -p oppsla-bench -p oppsla-server"

cargo fmt $OPPSLA_PKGS --check
cargo build --release
cargo build --release --examples
cargo test -q --workspace
# The SIMD micro-kernels are bit-identical to scalar by construction, so
# the kernel/engine test surface must stay green with the escape hatch
# thrown: this covers the env-var resolution path the in-process
# force_simd_level tests cannot reach.
OPPSLA_NO_SIMD=1 cargo test -q -p oppsla-tensor -p oppsla-nn -p oppsla
cargo test -q -p oppsla-core --features query-guard
# The cross-restart query memo is opt-in for the same reason the guard
# is: the default build must not even compile the machinery. The memoed
# crates get a dedicated pass (including the A/B monotonicity tests that
# only mean anything with the feature on).
cargo test -q -p oppsla-core -p oppsla-eval -p oppsla-bench -p oppsla-server \
    --features query-memo
# The telemetry feature is additive but changes what is compiled in, so
# the instrumented crates get their own test pass. Per-package (not
# --workspace): the vendored stubs have no such feature.
cargo test -q -p oppsla-obs -p oppsla-core -p oppsla-nn -p oppsla-attacks \
    -p oppsla-eval -p oppsla-bench -p oppsla-server --features telemetry
# Same again for the trace feature (additive over telemetry): the
# per-query recorder, its hooks in core/nn/attacks/eval, and the
# thread-count-invariance test only compile under it.
cargo test -q -p oppsla-obs -p oppsla-core -p oppsla-nn -p oppsla-attacks \
    -p oppsla-eval -p oppsla-bench -p oppsla-server --features trace
# One clippy pass over every target (lib, bins, tests, benches,
# examples) with the feature-matrix union enabled, so warnings in
# feature-gated code are also denied.
# The bench-gate self-test is pure shell; it runs in milliseconds.
sh scripts/test_bench_gate.sh
cargo clippy $OPPSLA_PKGS --all-targets \
    --features oppsla-core/query-guard,oppsla-core/query-memo,oppsla-eval/query-memo,oppsla-bench/query-memo,oppsla-server/query-memo,oppsla-obs/trace,oppsla-core/trace,oppsla-nn/trace,oppsla-attacks/trace,oppsla-eval/trace,oppsla-bench/trace,oppsla-server/trace \
    -- -D warnings
echo "check.sh: all green"
