#!/usr/bin/env bash
# Regenerates every table and figure of the paper in sequence.
#
# Usage: scripts/run_experiments.sh [extra flags passed to every binary]
#
# Outputs land in target/oppsla-reports/ (CSV) and logs/ (full stdout).
# Trained models and synthesized program suites are cached under
# target/oppsla-models/ and target/oppsla-programs/, so reruns are fast.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p oppsla-bench

mkdir -p logs
for exp in fig3 table1 fig4 table2; do
    echo "=== $exp ==="
    ./target/release/"$exp" "$@" 2>&1 | tee "logs/$exp.log"
done
echo "All experiments done. CSVs in target/oppsla-reports/, logs in logs/."
