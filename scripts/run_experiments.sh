#!/usr/bin/env bash
# Regenerates every table and figure of the paper in sequence.
#
# Usage: scripts/run_experiments.sh [extra flags passed to every binary]
#
# Outputs land in target/oppsla-reports/ (CSV) and logs/ (full stdout).
# Trained models and synthesized program suites are cached under
# target/oppsla-models/ and target/oppsla-programs/, so reruns are fast.
#
# Set OPPSLA_TELEMETRY=1 to build with the telemetry feature and collect
# per-phase counter events as target/oppsla-reports/<exp>.telemetry.jsonl.
# Telemetry writes only to those files and stderr — the stdout captured in
# logs/ is byte-identical either way.
set -euo pipefail
cd "$(dirname "$0")/.."

FEATURES=()
if [ "${OPPSLA_TELEMETRY:-0}" = "1" ]; then
    FEATURES=(--features telemetry)
    mkdir -p target/oppsla-reports
fi

cargo build --release -p oppsla-bench "${FEATURES[@]}"

mkdir -p logs
for exp in fig3 table1 fig4 table2; do
    echo "=== $exp ==="
    TELEMETRY_FLAGS=()
    if [ "${OPPSLA_TELEMETRY:-0}" = "1" ]; then
        TELEMETRY_FLAGS=(--telemetry "target/oppsla-reports/$exp.telemetry.jsonl")
    fi
    ./target/release/"$exp" "${TELEMETRY_FLAGS[@]}" "$@" 2>&1 | tee "logs/$exp.log"
done
echo "All experiments done. CSVs in target/oppsla-reports/, logs in logs/."
if [ "${OPPSLA_TELEMETRY:-0}" = "1" ]; then
    echo "Telemetry events in target/oppsla-reports/*.telemetry.jsonl."
fi
