#!/usr/bin/env python3
"""Black-box probe of a running oppsla_serverd.

Speaks the length-prefixed JSON frame protocol from a non-Rust client:
Ping, one valid attack job (budget accounting asserted), a determinism
re-check, an over-budget rejection, a Stats snapshot cross-checked
against the probe's own ground-truth counts, then the Shutdown
handshake. When a metrics port is given, the plaintext /metrics page is
scraped over HTTP and must agree with the Stats frame exactly.

Usage: server_probe.py [port] [metrics_port]
"""

import json
import socket
import struct
import sys


def recv_exact(sock, n):
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise EOFError(f"peer closed after {len(buf)}/{n} bytes")
        buf += chunk
    return buf


def call(sock, obj):
    payload = json.dumps(obj).encode()
    sock.sendall(struct.pack("<I", len(payload)) + payload)
    (n,) = struct.unpack("<I", recv_exact(sock, 4))
    return json.loads(recv_exact(sock, n).decode())


def stat(report, key):
    for sample in report["metrics"]:
        if sample["key"] == key:
            return sample["value"]
    raise AssertionError(f"{key} missing from Stats report")


def scrape_metrics(port):
    """One HTTP GET against the /metrics listener; returns {name: value}
    for every unlabelled sample line."""
    s = socket.create_connection(("127.0.0.1", port))
    s.sendall(b"GET /metrics HTTP/1.1\r\nHost: probe\r\n\r\n")
    page = b""
    while True:
        chunk = s.recv(65536)
        if not chunk:
            break
        page += chunk
    s.close()
    head, _, body = page.decode().partition("\r\n\r\n")
    assert head.startswith("HTTP/1.1 200"), head
    values = {}
    for line in body.splitlines():
        if line.startswith("#") or not line.strip():
            continue
        name, _, value = line.rpartition(" ")
        if "{" not in name and name:
            values[name] = float(value)
    return values


def main():
    port = int(sys.argv[1]) if len(sys.argv) > 1 else 7431
    metrics_port = int(sys.argv[2]) if len(sys.argv) > 2 else None
    s = socket.create_connection(("127.0.0.1", port))
    s.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    assert call(s, "Ping") == "Pong"

    # Ground truth this probe accumulates job by job; the Stats frame and
    # the /metrics page must agree with it to the last query.
    jobs_done = 0
    queries_total = 0

    # Scan a few test images so at least one job runs the sketch loop for
    # real (a weakly trained model misclassifies some images outright,
    # which ends the job after a single query).
    job = None
    done = None
    for index in range(6):
        candidate = {
            "arch": "mlp",
            "scale": "shapes32",
            "image": {"test_index": index, "inline": None},
            "budget": 300,
            "program": None,
            "seed": 7,
        }
        outcome = call(s, {"Attack": candidate})["Done"]
        assert outcome["queries"] <= 300, outcome
        assert outcome["log_len"] == outcome["queries"], outcome
        assert len(outcome["log_fnv"]) == 16, outcome
        jobs_done += 1
        queries_total += outcome["queries"]
        job, done = candidate, outcome
        if outcome["queries"] > 1:
            break
    assert done["queries"] > 1, "every probe image was already misclassified"

    again = call(s, {"Attack": job})["Done"]
    assert again == done, (again, done)
    jobs_done += 1
    queries_total += again["queries"]

    err = call(s, {"Attack": {**job, "budget": 10**9}})["Error"]
    assert "per-job limit" in err, err

    # Stats frame: machine-readable snapshot, cross-checked against the
    # counts above. A rejected job must not count as done.
    report = call(s, "Stats")["Stats"]
    assert report["uptime_ms"] > 0, report
    assert stat(report, "jobs_done") == jobs_done, report["metrics"]
    assert stat(report, "queries_total") == queries_total, report["metrics"]
    assert stat(report, "jobs_errored") >= 1, "the over-budget job was counted as errored"
    assert stat(report, "zoo_shard_trains") >= 1, "the mlp shard latch fired"
    assert report["slow_jobs"], "completed jobs populate the slow log"
    worst = report["slow_jobs"][0]
    assert worst["full_queries"] + worst["delta_queries"] == worst["queries"], worst

    if metrics_port is not None:
        scraped = scrape_metrics(metrics_port)
        assert scraped["jobs_done"] == jobs_done, scraped
        assert scraped["queries_total"] == queries_total, scraped
        print(f"probe: /metrics scrape agrees (jobs_done={jobs_done}, "
              f"queries_total={queries_total})")

    assert call(s, "Shutdown") == "ShuttingDown"
    print("probe ok:", done)


if __name__ == "__main__":
    main()
