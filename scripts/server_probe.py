#!/usr/bin/env python3
"""Black-box probe of a running oppsla_serverd.

Speaks the length-prefixed JSON frame protocol from a non-Rust client:
Ping, one valid attack job (budget accounting asserted), a determinism
re-check, an over-budget rejection, then the Shutdown handshake.

Usage: server_probe.py [port]
"""

import json
import socket
import struct
import sys


def recv_exact(sock, n):
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise EOFError(f"peer closed after {len(buf)}/{n} bytes")
        buf += chunk
    return buf


def call(sock, obj):
    payload = json.dumps(obj).encode()
    sock.sendall(struct.pack("<I", len(payload)) + payload)
    (n,) = struct.unpack("<I", recv_exact(sock, 4))
    return json.loads(recv_exact(sock, n).decode())


def main():
    port = int(sys.argv[1]) if len(sys.argv) > 1 else 7431
    s = socket.create_connection(("127.0.0.1", port))
    s.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    assert call(s, "Ping") == "Pong"

    # Scan a few test images so at least one job runs the sketch loop for
    # real (a weakly trained model misclassifies some images outright,
    # which ends the job after a single query).
    job = None
    done = None
    for index in range(6):
        candidate = {
            "arch": "mlp",
            "scale": "shapes32",
            "image": {"test_index": index, "inline": None},
            "budget": 300,
            "program": None,
            "seed": 7,
        }
        outcome = call(s, {"Attack": candidate})["Done"]
        assert outcome["queries"] <= 300, outcome
        assert outcome["log_len"] == outcome["queries"], outcome
        assert len(outcome["log_fnv"]) == 16, outcome
        job, done = candidate, outcome
        if outcome["queries"] > 1:
            break
    assert done["queries"] > 1, "every probe image was already misclassified"

    again = call(s, {"Attack": job})["Done"]
    assert again == done, (again, done)

    err = call(s, {"Attack": {**job, "budget": 10**9}})["Error"]
    assert "per-job limit" in err, err

    assert call(s, "Shutdown") == "ShuttingDown"
    print("probe ok:", done)


if __name__ == "__main__":
    main()
