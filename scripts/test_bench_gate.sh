#!/usr/bin/env sh
# Self-test for scripts/bench_gate.sh, exercising it on synthetic
# reports. Covers the pass/warn/fail paths the CI jobs rely on, and in
# particular the forward-compat contract: a report missing an *optional*
# field (trace_hook_ns_per_op) must WARN, not fail — reports written by
# binaries from before or after the field was introduced stay gateable.
#
# Usage: scripts/test_bench_gate.sh   (exit 0 iff every case behaves)
set -eu

gate=$(dirname "$0")/bench_gate.sh
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM

failures=0
# expect NAME EXPECTED_STATUS [ARGS...]: run the gate, compare exit codes.
expect() {
    name=$1
    want=$2
    shift 2
    got=0
    out=$(sh "$gate" "$@" 2>&1) || got=$?
    if [ "$got" -eq "$want" ]; then
        echo "ok       $name"
    else
        echo "FAIL     $name: expected exit $want, got $got"
        echo "$out" | sed 's/^/         | /'
        failures=$((failures + 1))
    fi
}
# expect_grep NAME PATTERN [ARGS...]: the gate's output must match.
expect_grep() {
    name=$1
    pat=$2
    shift 2
    out=$(sh "$gate" "$@" 2>&1) || true
    if echo "$out" | grep -q "$pat"; then
        echo "ok       $name"
    else
        echo "FAIL     $name: output does not match '$pat'"
        echo "$out" | sed 's/^/         | /'
        failures=$((failures + 1))
    fi
}

row() { # row SPEEDUP [EXTRA_JSON]
    printf '{"bench": "t", "arch": "mlp", "input": "shapes32", "x_speedup": %s%s}\n' "$1" "${2:-}"
}

row 2.0 > "$tmp/base.json"

# --- happy path: identical reports pass in both modes -----------------
row 2.0 > "$tmp/same.json"
expect "identical reports pass" 0 "$tmp/same.json" "$tmp/base.json"
expect "identical reports fail --require-improvement" 1 \
    --require-improvement "$tmp/same.json" "$tmp/base.json"
row 2.5 > "$tmp/better.json"
expect "improved report passes --require-improvement" 0 \
    --require-improvement "$tmp/better.json" "$tmp/base.json"

# --- regression thresholds -------------------------------------------
row 1.0 > "$tmp/half.json" # 50% of baseline
expect "50% regression fails the default 25% gate" 1 \
    "$tmp/half.json" "$tmp/base.json"
expect "50% regression passes --max-regression 60" 0 \
    --max-regression 60 "$tmp/half.json" "$tmp/base.json"
row 1.7 > "$tmp/slight.json" # 85% of baseline
expect "15% regression passes the default gate" 0 \
    "$tmp/slight.json" "$tmp/base.json"
expect "15% regression fails --max-regression 10" 1 \
    --max-regression 10 "$tmp/slight.json" "$tmp/base.json"
expect "non-numeric --max-regression is a usage error" 2 \
    --max-regression lots "$tmp/same.json" "$tmp/base.json"

# --- missing rows ----------------------------------------------------
: > "$tmp/empty.json"
expect "baseline row missing from new report fails" 1 \
    "$tmp/empty.json" "$tmp/base.json"

# --- optional fields: unknown ones ignored, absent ones warn ---------
row 2.0 ', "future_field": 7' > "$tmp/extra.json"
expect "unknown extra field is ignored" 0 "$tmp/extra.json" "$tmp/base.json"

# Server loadtest rows carry per-tenant latency percentiles: a nested
# array of objects plus a worst_tenant_p99_ms scalar, neither of which
# is a *_speedup key. The gate must neither choke on the nesting nor
# mistake the latency numbers for comparable metrics.
row 2.0 ', "worst_tenant_p99_ms": 41.5, "tenant_latency": [{"tenant": 0, "p50_ms": 3.2, "p99_ms": 41.5}, {"tenant": 1, "p50_ms": 2.9, "p99_ms": 17.0}]' \
    > "$tmp/tenantlat.json"
expect "server per-tenant latency fields are ignored" 0 \
    "$tmp/tenantlat.json" "$tmp/base.json"
expect_grep "latency fields never become compared metrics" \
    "geometric mean of 1 speedup" "$tmp/tenantlat.json" "$tmp/base.json"

row 2.0 ', "trace_enabled": false' > "$tmp/nohook.json"
expect "trace_enabled false without hook field passes" 0 \
    "$tmp/nohook.json" "$tmp/base.json"
expect_grep "absent optional hook field warns" \
    "warn.*trace_hook_ns_per_op" "$tmp/nohook.json" "$tmp/base.json"

row 2.0 ', "trace_enabled": false, "trace_hook_ns_per_op": 0.0' > "$tmp/zerohook.json"
expect "zero disarmed hook passes" 0 "$tmp/zerohook.json" "$tmp/base.json"

row 2.0 ', "trace_enabled": false, "trace_hook_ns_per_op": 3.5' > "$tmp/hothook.json"
expect "nonzero disarmed hook fails" 1 "$tmp/hothook.json" "$tmp/base.json"

# --- hard floors -----------------------------------------------------
printf '{"bench": "t", "arch": "densenet-small", "input": "shapes32", "engine_speedup": 0.8}\n' \
    > "$tmp/slowengine.json"
printf '{"bench": "t", "arch": "densenet-small", "input": "shapes32", "engine_speedup": 0.8}\n' \
    > "$tmp/slowengine-base.json"
expect "densenet engine_speedup < 1.0 always fails" 1 \
    "$tmp/slowengine.json" "$tmp/slowengine-base.json"

if [ "$failures" -gt 0 ]; then
    echo "test_bench_gate: $failures case(s) failed" >&2
    exit 1
fi
echo "test_bench_gate: all cases passed"
