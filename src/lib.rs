//! # OPPSLA — One Pixel Adversarial Attacks via Sketched Programs
//!
//! Umbrella crate for the OPPSLA reproduction workspace. It re-exports the
//! member crates under stable names; see the README for the architecture
//! overview and `DESIGN.md` for the system inventory.
//!
//! * [`core`] — the paper's contribution: sketch, condition DSL, oracle,
//!   Metropolis–Hastings synthesizer.
//! * [`attacks`] — Sparse-RS, SuOPA and other baselines.
//! * [`nn`] / [`tensor`] — the from-scratch classifier substrate.
//! * [`data`] — seeded synthetic datasets.
//! * [`eval`] — the experiment harness behind every table and figure.
//!
//! # Examples
//!
//! ```
//! use oppsla::core::dsl::{parse_program, Program};
//!
//! let example = Program::paper_example();
//! assert_eq!(parse_program(&example.to_string()).unwrap(), example);
//! ```

pub use oppsla_attacks as attacks;
pub use oppsla_core as core;
pub use oppsla_data as data;
pub use oppsla_eval as eval;
pub use oppsla_nn as nn;
pub use oppsla_tensor as tensor;
