//! Property-based tests of the condition language: parser/pretty-printer
//! round trips, typed sampling, and grammar-preserving mutation.

use oppsla::core::dsl::{
    is_well_typed, mutate, parse_condition, parse_program, random_program, Cmp, Condition, Func,
    ImageDims, PixelStat, Program,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arb_func() -> impl Strategy<Value = Func> {
    prop_oneof![
        Just(Func::Pixel(PixelStat::Max)),
        Just(Func::Pixel(PixelStat::Min)),
        Just(Func::Pixel(PixelStat::Avg)),
        Just(Func::ScoreDiff),
        Just(Func::Center),
    ]
}

fn arb_cmp() -> impl Strategy<Value = Cmp> {
    prop_oneof![Just(Cmp::Lt), Just(Cmp::Gt)]
}

fn arb_condition() -> impl Strategy<Value = Condition> {
    prop_oneof![
        (arb_func(), arb_cmp(), -16.0f64..16.0).prop_map(|(func, cmp, threshold)| {
            Condition::Compare {
                func,
                cmp,
                threshold,
            }
        }),
        any::<bool>().prop_map(Condition::Const),
    ]
}

fn arb_program() -> impl Strategy<Value = Program> {
    [
        arb_condition(),
        arb_condition(),
        arb_condition(),
        arb_condition(),
    ]
    .prop_map(Program::new)
}

proptest! {
    /// Any program (including baseline constants and out-of-range
    /// thresholds) survives display → parse unchanged.
    #[test]
    fn display_parse_round_trip(program in arb_program()) {
        let text = program.to_string();
        let parsed = parse_program(&text)
            .unwrap_or_else(|e| panic!("{text:?} failed to parse: {e}"));
        prop_assert_eq!(parsed, program);
    }

    /// Single conditions round trip too.
    #[test]
    fn condition_round_trip(condition in arb_condition()) {
        let text = condition.to_string();
        let parsed = parse_condition(&text)
            .unwrap_or_else(|e| panic!("{text:?} failed to parse: {e}"));
        prop_assert_eq!(parsed, condition);
    }

    /// Randomly generated programs are well-typed for their image dims.
    #[test]
    fn random_programs_are_well_typed(seed in any::<u64>(), h in 2usize..64, w in 2usize..64) {
        let dims = ImageDims::new(h, w);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let program = random_program(&mut rng, dims);
        prop_assert!(is_well_typed(&program, dims), "{program}");
    }

    /// Mutation chains never leave the typed fragment.
    #[test]
    fn mutation_preserves_typing(seed in any::<u64>(), steps in 1usize..40) {
        let dims = ImageDims::new(32, 32);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut program = random_program(&mut rng, dims);
        for _ in 0..steps {
            program = mutate(&mut rng, &program, dims);
            prop_assert!(is_well_typed(&program, dims), "{program}");
        }
    }

    /// Mutants always parse back (mutation and syntax stay in sync).
    #[test]
    fn mutants_round_trip(seed in any::<u64>()) {
        let dims = ImageDims::new(16, 16);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let base = random_program(&mut rng, dims);
        let program = mutate(&mut rng, &base, dims);
        prop_assert_eq!(parse_program(&program.to_string()).unwrap(), program);
    }

    /// Parsing is total: arbitrary input never panics (errors are fine).
    #[test]
    fn parser_never_panics(input in "\\PC{0,60}") {
        let _ = parse_program(&input);
        let _ = parse_condition(&input);
    }
}
