//! End-to-end integration: train a real (tiny) network from the zoo, run
//! the full OPPSLA pipeline against it, and cross-check the attacks'
//! bookkeeping against each other.

use oppsla::attacks::{Attack, RandomPairs, SketchProgramAttack, SparseRs, SparseRsConfig};
use oppsla::core::dsl::GrammarConfig;
use oppsla::core::dsl::Program;
use oppsla::core::oracle::Classifier;
use oppsla::core::synth::{evaluate_program, SynthConfig};
use oppsla::eval::curves::evaluate_attack;
use oppsla::eval::suite::{synthesize_suite, SuiteAttack};
use oppsla::eval::zoo::{attack_test_set, train_or_load, Scale, ZooConfig};
use oppsla::nn::models::Arch;

fn tiny_zoo_config() -> ZooConfig {
    ZooConfig {
        train_per_class: 6,
        epochs: Some(2),
        learning_rate: 2e-3,
        seed: 11,
        cache_dir: None, // tests never touch the shared cache
    }
}

#[test]
fn mlp_pipeline_synthesize_and_attack() {
    let model = train_or_load(Arch::Mlp, Scale::Cifar, &tiny_zoo_config());
    assert_eq!(model.num_classes(), 10);

    // Synthesize a (very small) suite and make sure it produces programs
    // that evaluate finitely where the fixed program does.
    let train = attack_test_set(Scale::Cifar, 1, 5);
    let synth = SynthConfig {
        max_iterations: 2,
        beta: 0.01,
        seed: 0,
        per_image_budget: Some(300),
        prefilter: false,
        grammar: GrammarConfig::paper(),
        threads: 1,
    };
    let (suite, reports) = synthesize_suite(&model, &train, 10, &synth);
    assert_eq!(suite.programs().len(), 10);
    assert_eq!(reports.len(), 10);
    assert!(reports.iter().all(|r| r.is_some()), "every class had data");

    // Evaluate the suite attack against the fixed baseline on a small
    // budget; both are sketch instantiations, so their success sets must
    // be identical when the budget is exhaustive.
    let test = attack_test_set(Scale::Cifar, 1, 99);
    let budget = 8 * 32 * 32 + 1; // exhaustive
    let oppsla = evaluate_attack(&SuiteAttack::new(suite), &model, &test, budget, 0);
    let fixed = evaluate_attack(
        &SketchProgramAttack::named(Program::constant(false), "sketch+false"),
        &model,
        &test,
        budget,
        0,
    );
    assert_eq!(
        oppsla.success_rate(),
        fixed.success_rate(),
        "sketch success rate is instantiation-independent at exhaustive budgets"
    );
    assert_eq!(oppsla.num_valid(), fixed.num_valid());
}

#[test]
fn random_pairs_agrees_with_sketch_on_success_set() {
    let model = train_or_load(Arch::Mlp, Scale::Cifar, &tiny_zoo_config());
    let test = attack_test_set(Scale::Cifar, 1, 42);
    let budget = 8 * 32 * 32 + 1;
    let sketch = evaluate_attack(
        &SketchProgramAttack::new(Program::constant(false)),
        &model,
        &test,
        budget,
        0,
    );
    let random = evaluate_attack(&RandomPairs::default(), &model, &test, budget, 7);
    // Both enumerate the same candidate space exhaustively: identical
    // success/valid sets (though wildly different query counts).
    assert_eq!(sketch.success_rate(), random.success_rate());
    assert_eq!(sketch.num_valid(), random.num_valid());
}

#[test]
fn sparse_rs_success_set_is_subset_of_sketch() {
    let model = train_or_load(Arch::Mlp, Scale::Cifar, &tiny_zoo_config());
    let test = attack_test_set(Scale::Cifar, 1, 77);
    let exhaustive = 8 * 32 * 32 + 1;
    let sketch = evaluate_attack(
        &SketchProgramAttack::new(Program::constant(false)),
        &model,
        &test,
        exhaustive,
        0,
    );
    let sparse = evaluate_attack(
        &SparseRs::new(SparseRsConfig {
            max_iterations: 2000,
            ..SparseRsConfig::default()
        }),
        &model,
        &test,
        2001,
        0,
    );
    // Sparse-RS samples corners only, so anything it finds exists in the
    // sketch's space too.
    assert!(
        sparse.success_rate() <= sketch.success_rate() + 1e-9,
        "sparse-rs {} vs sketch {}",
        sparse.success_rate(),
        sketch.success_rate()
    );
}

#[test]
fn synthesis_reduces_or_matches_training_cost() {
    // On the trained MLP, OPPSLA's final program should not be
    // *dramatically* worse than the fixed program on its own training set
    // (MH accepts improvements with probability 1). We assert the weaker,
    // robust property that both evaluations are consistent and the
    // synthesized program's average is within 2x of the fixed program's.
    let model = train_or_load(Arch::Mlp, Scale::Cifar, &tiny_zoo_config());
    let train = attack_test_set(Scale::Cifar, 1, 13);
    let fixed_eval = evaluate_program(&Program::constant(false), &model, &train, Some(600));
    let synth = SynthConfig {
        max_iterations: 8,
        beta: 0.01,
        seed: 1,
        per_image_budget: Some(600),
        prefilter: false,
        grammar: GrammarConfig::paper(),
        threads: 1,
    };
    let report = oppsla::core::synth::synthesize(&model, &train, &synth);
    let oppsla_eval = evaluate_program(&report.program, &model, &train, Some(600));
    if fixed_eval.successes > 0 {
        assert!(oppsla_eval.successes > 0, "synthesis lost all successes");
        assert!(
            oppsla_eval.avg_queries <= fixed_eval.avg_queries * 2.0 + 50.0,
            "synthesized program wildly worse: {} vs {}",
            oppsla_eval.avg_queries,
            fixed_eval.avg_queries
        );
    }
}

#[test]
fn attack_outcomes_never_exceed_budget() {
    let model = train_or_load(Arch::Mlp, Scale::Cifar, &tiny_zoo_config());
    let test = attack_test_set(Scale::Cifar, 1, 3);
    for budget in [1u64, 17, 150] {
        for attack in [
            Box::new(SketchProgramAttack::new(Program::paper_example())) as Box<dyn Attack>,
            Box::new(SparseRs::default()),
            Box::new(RandomPairs::default()),
        ] {
            let eval = evaluate_attack(attack.as_ref(), &model, &test, budget, 0);
            for outcome in &eval.outcomes {
                assert!(
                    outcome.queries() <= budget,
                    "{} overspent: {} > {budget}",
                    attack.name(),
                    outcome.queries()
                );
            }
        }
    }
}
