//! A/B test for the `OPPSLA_NO_SIMD` escape hatch: the scalar micro-kernel
//! and the widest detected SIMD level produce bit-identical scores through
//! the full engine stack (full forward, incremental delta, threaded GEMM).
//!
//! The env var itself is resolved once per process, so this test drives
//! the same switch through [`force_simd_level`] — the documented
//! programmatic override the env var feeds — and CI additionally runs the
//! whole suite under `OPPSLA_NO_SIMD=1` to cover the env path end to end.

use oppsla::nn::infer::InferenceEngine;
use oppsla::nn::models::{Arch, ConvNet, InputSpec};
use oppsla::tensor::gemm::{
    available_levels, force_simd_level, gemm_threads, set_gemm_threads, SimdLevel,
};
use oppsla::tensor::Tensor;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn test_image(spec: InputSpec) -> Tensor {
    Tensor::from_fn([spec.channels, spec.height, spec.width], |i| {
        ((i as f32) * 0.173).cos().abs()
    })
}

/// Full-engine scores for one arch at one SIMD level: a fresh engine, a
/// full forward, and a few incremental pixel-delta queries.
fn scores_at_level(level: SimdLevel, net: &ConvNet, image: &Tensor) -> Vec<f32> {
    force_simd_level(level);
    let engine = InferenceEngine::new(net);
    let mut all = engine.scores(image);
    let mut out = Vec::new();
    for (row, col) in [(0, 0), (9, 21), (31, 31)] {
        engine.scores_pixel_delta_into(image, row, col, [0.7, 0.2, 0.9], &mut out);
        all.extend_from_slice(&out);
    }
    all
}

#[test]
fn scalar_and_simd_scores_are_bit_identical() {
    let image = test_image(InputSpec::RGB32);
    for arch in [Arch::VggSmall, Arch::ResNetSmall, Arch::DenseNetSmall] {
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let net = ConvNet::build(arch, InputSpec::RGB32, 6, &mut rng);
        let scalar = scores_at_level(SimdLevel::Scalar, &net, &image);
        for level in available_levels() {
            let got = scores_at_level(level, &net, &image);
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{arch}: {} diverged from scalar",
                level.as_str()
            );
        }
    }
    // Leave the process on its detected default for other tests.
    force_simd_level(*available_levels().last().unwrap());
}

#[test]
fn gemm_thread_count_does_not_change_scores() {
    let image = test_image(InputSpec::RGB32);
    let mut rng = ChaCha8Rng::seed_from_u64(43);
    let net = ConvNet::build(Arch::VggSmall, InputSpec::RGB32, 5, &mut rng);
    let before = gemm_threads();
    set_gemm_threads(1);
    let engine = InferenceEngine::new(&net);
    let serial = engine.scores(&image);
    set_gemm_threads(4);
    let threaded = engine.scores(&image);
    set_gemm_threads(before);
    assert_eq!(
        serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        threaded.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
    );
}
