//! Model-based testing of the sketch's pair queue: the arena-backed
//! linked-list implementation must behave exactly like a naive
//! `VecDeque`-with-linear-scan reference model under arbitrary operation
//! sequences.

use oppsla::core::image::Image;
use oppsla::core::pair::{Corner, Location, Pair, Pixel};
use oppsla::core::queue::PairQueue;
use proptest::prelude::*;
use std::collections::VecDeque;

/// The obviously-correct reference model.
#[derive(Debug, Clone)]
struct NaiveQueue {
    pairs: VecDeque<Pair>,
    height: usize,
    width: usize,
}

impl NaiveQueue {
    fn from_real(real: &PairQueue, height: usize, width: usize) -> Self {
        NaiveQueue {
            pairs: real.iter().collect(),
            height,
            width,
        }
    }

    fn pop(&mut self) -> Option<Pair> {
        self.pairs.pop_front()
    }

    fn remove(&mut self, pair: Pair) -> bool {
        match self.pairs.iter().position(|&p| p == pair) {
            Some(i) => {
                self.pairs.remove(i);
                true
            }
            None => false,
        }
    }

    fn push_back(&mut self, pair: Pair) -> bool {
        if self.remove(pair) {
            self.pairs.push_back(pair);
            true
        } else {
            false
        }
    }

    fn contains(&self, pair: Pair) -> bool {
        self.pairs.contains(&pair)
    }

    fn next_at_location(&self, loc: Location) -> Option<Pair> {
        self.pairs.iter().find(|p| p.location == loc).copied()
    }

    fn location_neighbors(&self, loc: Location, corner: Corner) -> Vec<Pair> {
        loc.neighbors(self.height, self.width)
            .map(|n| Pair::new(n, corner))
            .filter(|p| self.contains(*p))
            .collect()
    }
}

#[derive(Debug, Clone)]
enum Op {
    Pop,
    Remove(Pair),
    PushBack(Pair),
    CheckNextAt(Location),
    CheckNeighbors(Location, Corner),
}

fn arb_pair(h: u16, w: u16) -> impl Strategy<Value = Pair> {
    (0..h, 0..w, 0u8..8).prop_map(|(r, c, k)| Pair::new(Location::new(r, c), Corner::new(k)))
}

fn arb_op(h: u16, w: u16) -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => Just(Op::Pop),
        3 => arb_pair(h, w).prop_map(Op::Remove),
        3 => arb_pair(h, w).prop_map(Op::PushBack),
        1 => (0..h, 0..w).prop_map(|(r, c)| Op::CheckNextAt(Location::new(r, c))),
        1 => arb_pair(h, w).prop_map(|p| Op::CheckNeighbors(p.location, p.corner)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn queue_matches_reference_model(
        ops in proptest::collection::vec(arb_op(4, 4), 0..120),
        fill in 1u8..9,
    ) {
        let v = fill as f32 / 10.0;
        let image = Image::filled(4, 4, Pixel([v, v, v]));
        let mut real = PairQueue::for_image(&image);
        let mut model = NaiveQueue::from_real(&real, 4, 4);
        prop_assert_eq!(real.len(), model.pairs.len());

        for op in ops {
            match op {
                Op::Pop => {
                    prop_assert_eq!(real.pop(), model.pop());
                }
                Op::Remove(p) => {
                    prop_assert_eq!(real.remove(p), model.remove(p));
                }
                Op::PushBack(p) => {
                    prop_assert_eq!(real.push_back(p), model.push_back(p));
                }
                Op::CheckNextAt(loc) => {
                    prop_assert_eq!(real.next_at_location(loc), model.next_at_location(loc));
                }
                Op::CheckNeighbors(loc, corner) => {
                    prop_assert_eq!(
                        real.location_neighbors(loc, corner),
                        model.location_neighbors(loc, corner)
                    );
                }
            }
            prop_assert_eq!(real.len(), model.pairs.len());
        }
        // Final drains agree element-for-element (total order preserved).
        let real_rest: Vec<Pair> = real.iter().collect();
        let model_rest: Vec<Pair> = model.pairs.iter().copied().collect();
        prop_assert_eq!(real_rest, model_rest);
    }

    /// The initial ordering satisfies the paper's two sort keys.
    #[test]
    fn initial_order_keys_hold(fill in 0u8..11) {
        let v = (fill as f32 / 10.0).min(1.0);
        let image = Image::filled(5, 5, Pixel([v, v, v]));
        let queue = PairQueue::for_image(&image);
        let pairs: Vec<Pair> = queue.iter().collect();
        prop_assert_eq!(pairs.len(), 8 * 25);
        // Primary key: blocks of d1*d2 pairs with non-increasing pixel
        // distance of the corner from the (uniform) image pixel.
        let pix = Pixel([v, v, v]);
        for block in 0..8 {
            let d0 = pix.distance(pairs[block * 25].corner.as_pixel());
            for p in &pairs[block * 25..(block + 1) * 25] {
                prop_assert_eq!(pix.distance(p.corner.as_pixel()), d0,
                    "block {} mixes corner distances", block);
            }
            if block > 0 {
                let prev = pix.distance(pairs[(block - 1) * 25].corner.as_pixel());
                prop_assert!(prev >= d0, "blocks not sorted farthest-first");
            }
            // Secondary key: centre-out within the block.
            for w in pairs[block * 25..(block + 1) * 25].windows(2) {
                prop_assert!(
                    image.center_distance(w[0].location)
                        <= image.center_distance(w[1].location),
                    "block {} not centre-out", block
                );
            }
        }
    }
}
