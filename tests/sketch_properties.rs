//! Property-based tests of the sketch's central guarantees:
//!
//! 1. **Exhaustiveness** — every instantiation of the sketch finds a
//!    successful adversarial example whenever one exists in the corner
//!    perturbation space, regardless of the conditions (the paper's
//!    success-rate-independence claim).
//! 2. **No duplicate queries** — the removal discipline queries each
//!    location–perturbation candidate at most once.
//! 3. **Query bounds** — a run spends at most `8·d₁·d₂ + 1` queries.

use oppsla::core::dsl::{random_program, ImageDims, Program};
use oppsla::core::image::Image;
use oppsla::core::oracle::{Classifier, FnClassifier, Oracle};
use oppsla::core::pair::{Corner, Location, Pixel};
use oppsla::core::sketch::{run_sketch, SketchOutcome};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::cell::RefCell;
use std::collections::HashSet;

/// A classifier that flips iff the pixel at `target` equals the `trigger`
/// corner, and records every queried image to detect duplicates.
struct RecordingClassifier {
    target: Location,
    trigger: Pixel,
    seen: RefCell<HashSet<Vec<u32>>>,
    duplicates: RefCell<usize>,
}

impl RecordingClassifier {
    fn new(target: Location, trigger: Pixel) -> Self {
        RecordingClassifier {
            target,
            trigger,
            seen: RefCell::new(HashSet::new()),
            duplicates: RefCell::new(0),
        }
    }

    fn duplicates(&self) -> usize {
        *self.duplicates.borrow()
    }
}

impl Classifier for RecordingClassifier {
    fn num_classes(&self) -> usize {
        2
    }

    fn scores(&self, image: &Image) -> Vec<f32> {
        let key: Vec<u32> = image.data().iter().map(|v| v.to_bits()).collect();
        if !self.seen.borrow_mut().insert(key) {
            *self.duplicates.borrow_mut() += 1;
        }
        if image.pixel(self.target) == self.trigger {
            vec![0.1, 0.9]
        } else {
            vec![0.9, 0.1]
        }
    }
}

fn arb_program(height: usize, width: usize) -> impl Strategy<Value = Program> {
    any::<u64>().prop_map(move |seed| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        random_program(&mut rng, ImageDims::new(height, width))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any program finds the planted one-pixel weakness.
    #[test]
    fn every_program_finds_a_planted_trigger(
        program in arb_program(6, 7),
        target_row in 0u16..6,
        target_col in 0u16..7,
        corner_idx in 0u8..8,
        base in 1u8..9,
    ) {
        let target = Location::new(target_row, target_col);
        let trigger = Corner::new(corner_idx).as_pixel();
        let v = base as f32 / 10.0;
        // Skip the degenerate case where the base colour already equals
        // the trigger (the clean image would be misclassified).
        prop_assume!(Pixel([v, v, v]) != trigger);
        let clf = RecordingClassifier::new(target, trigger);
        let image = Image::filled(6, 7, Pixel([v, v, v]));
        let mut oracle = Oracle::new(&clf);
        let outcome = run_sketch(&program, &mut oracle, &image, 0);
        match outcome {
            SketchOutcome::Success { pair, queries } => {
                prop_assert_eq!(pair.location, target);
                prop_assert_eq!(pair.corner.as_pixel(), trigger);
                prop_assert!(queries <= 8 * 6 * 7 + 1);
            }
            other => prop_assert!(false, "program failed to find trigger: {:?}", other),
        }
    }

    /// No candidate is ever queried twice, even with eager conditions.
    #[test]
    fn no_duplicate_queries(program in arb_program(5, 5)) {
        // Robust classifier: the sketch visits the entire space.
        let clf = RecordingClassifier::new(Location::new(0, 0), Pixel([0.5, 0.5, 0.5]));
        let image = Image::filled(5, 5, Pixel([0.4, 0.4, 0.4]));
        let mut oracle = Oracle::new(&clf);
        let outcome = run_sketch(&program, &mut oracle, &image, 0);
        prop_assert_eq!(clf.duplicates(), 0, "some image was submitted twice");
        // Exhaustion must spend exactly one query per candidate plus the
        // baseline.
        prop_assert_eq!(outcome.queries(), 8 * 25 + 1);
        let exhausted = matches!(outcome, SketchOutcome::Exhausted { .. });
        prop_assert!(exhausted);
    }

    /// Under any budget, the sketch never overspends.
    #[test]
    fn budget_is_never_exceeded(
        program in arb_program(5, 5),
        budget in 0u64..220,
    ) {
        let clf = FnClassifier::new(2, |_: &Image| vec![0.9, 0.1]);
        let image = Image::filled(5, 5, Pixel([0.4, 0.4, 0.4]));
        let mut oracle = Oracle::with_budget(&clf, budget);
        let outcome = run_sketch(&program, &mut oracle, &image, 0);
        prop_assert!(outcome.queries() <= budget);
        if budget <= 8 * 25 {
            let out_of_budget = matches!(outcome, SketchOutcome::OutOfBudget { .. });
            prop_assert!(out_of_budget);
        }
    }

    /// The sketch is deterministic: same program, same image, same count.
    #[test]
    fn sketch_is_deterministic(program in arb_program(4, 4), corner_idx in 0u8..8) {
        let trigger = Corner::new(corner_idx).as_pixel();
        let run = || {
            let clf = RecordingClassifier::new(Location::new(2, 1), trigger);
            let image = Image::filled(4, 4, Pixel([0.4, 0.5, 0.6]));
            let mut oracle = Oracle::new(&clf);
            run_sketch(&program, &mut oracle, &image, 0)
        };
        prop_assert_eq!(run(), run());
    }
}

/// Beyond proptest: the paper's Figure-level claim that success is shared
/// across instantiations while cost differs — checked on a classifier
/// with several planted weaknesses.
#[test]
fn success_is_program_independent_cost_is_not() {
    let clf = FnClassifier::new(2, |img: &Image| {
        let white = Pixel([1.0, 1.0, 1.0]);
        if img.pixel(Location::new(7, 7)) == white || img.pixel(Location::new(1, 2)) == white {
            vec![0.2, 0.8]
        } else {
            vec![0.8, 0.2]
        }
    });
    let image = Image::filled(9, 9, Pixel([0.3, 0.35, 0.4]));
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let mut costs = HashSet::new();
    for i in 0..12 {
        let program = if i == 0 {
            Program::constant(false)
        } else {
            random_program(&mut rng, ImageDims::new(9, 9))
        };
        let mut oracle = Oracle::new(&clf);
        let outcome = run_sketch(&program, &mut oracle, &image, 0);
        assert!(outcome.is_success(), "program {i} failed");
        costs.insert(outcome.queries());
    }
    assert!(
        costs.len() > 1,
        "all programs cost the same — conditions are inert"
    );
}
