//! Behavioural fidelity tests for Algorithm 1's four reordering slots.
//!
//! Each test instantiates exactly one condition with a predicate that
//! fires only at the image centre, runs the sketch against a robust
//! classifier that records the *order* in which candidates are queried,
//! and asserts the precise reordering the paper prescribes:
//!
//! * `B₁` — the centre's location neighbours (same corner) end up at the
//!   back of the queue.
//! * `B₂` — the centre's next perturbation is deferred, cascading until
//!   all remaining centre pairs are the last ones visited.
//! * `B₃` — location neighbours are checked *immediately* (front).
//! * `B₄` — the next perturbation at the centre is checked immediately,
//!   recursively draining all corners at the centre first.

use oppsla::core::dsl::{parse_condition, Condition, Program};
use oppsla::core::image::Image;
use oppsla::core::oracle::{Classifier, Oracle};
use oppsla::core::pair::{Corner, Location, Pair, Pixel};
use oppsla::core::sketch::{run_sketch, SketchOutcome};
use std::cell::RefCell;

/// A robust 2-class classifier that records which pair each query
/// perturbs (decoded by diffing against the base image).
struct TranscriptClassifier {
    base: Image,
    transcript: RefCell<Vec<Option<Pair>>>,
}

impl TranscriptClassifier {
    fn new(base: Image) -> Self {
        TranscriptClassifier {
            base,
            transcript: RefCell::new(Vec::new()),
        }
    }

    /// Queried pairs in order, skipping the unperturbed baseline query.
    fn queried_pairs(&self) -> Vec<Pair> {
        self.transcript.borrow().iter().flatten().copied().collect()
    }

    fn decode(&self, image: &Image) -> Option<Pair> {
        for row in 0..image.height() as u16 {
            for col in 0..image.width() as u16 {
                let loc = Location::new(row, col);
                let pixel = image.pixel(loc);
                if pixel != self.base.pixel(loc) {
                    let corner = Corner::ALL
                        .into_iter()
                        .find(|c| c.as_pixel() == pixel)
                        .expect("perturbations are cube corners");
                    return Some(Pair::new(loc, corner));
                }
            }
        }
        None
    }
}

impl Classifier for TranscriptClassifier {
    fn num_classes(&self) -> usize {
        2
    }

    fn scores(&self, image: &Image) -> Vec<f32> {
        self.transcript.borrow_mut().push(self.decode(image));
        vec![0.9, 0.1] // never flips: the full enumeration is observed
    }
}

/// A program with one condition set and the rest false.
fn only(slot: usize, cond: &str) -> Program {
    let mut conditions = [
        Condition::FALSE,
        Condition::FALSE,
        Condition::FALSE,
        Condition::FALSE,
    ];
    conditions[slot - 1] = parse_condition(cond).expect("test condition parses");
    Program::new(conditions)
}

/// Fires only at the exact centre of an odd-sized image.
const AT_CENTER: &str = "center(l) < 0.5";

fn run(program: &Program, size: u16) -> (Vec<Pair>, Image) {
    let base = Image::filled(size as usize, size as usize, Pixel([0.3, 0.4, 0.5]));
    let clf = TranscriptClassifier::new(base.clone());
    // The transcript observes the order of classifier *submissions*, which
    // must equal Algorithm 1's consumption order — so speculative
    // prefetching (which evaluates candidates ahead of consumption without
    // changing what is consumed when) is disabled for these tests;
    // `tests/batched_equivalence.rs` covers the speculative route.
    let mut oracle = Oracle::new(&clf).without_speculation();
    let outcome = run_sketch(program, &mut oracle, &base, 0);
    assert!(matches!(outcome, SketchOutcome::Exhausted { .. }));
    let pairs = clf.queried_pairs();
    assert_eq!(pairs.len(), 8 * (size as usize).pow(2), "full enumeration");
    (pairs, base)
}

#[test]
fn b1_pushes_location_neighbors_to_the_back() {
    // 5x5, B1 fires only when the centre pops (once per corner). Each
    // firing pushes the centre's 8 ring-1 neighbours (same corner) to the
    // back; ring-1 pairs never re-fire. So all 64 ring-1 pairs are the
    // last candidates visited.
    let (pairs, _) = run(&only(1, AT_CENTER), 5);
    let center = Location::new(2, 2);
    let tail = &pairs[pairs.len() - 64..];
    for p in tail {
        assert_eq!(
            p.location.distance(center),
            1,
            "tail contains non-neighbour {p}"
        );
    }
    // And the non-tail prefix contains no ring-1 pair.
    for p in &pairs[..pairs.len() - 64] {
        assert_ne!(
            p.location.distance(center),
            1,
            "neighbour {p} escaped the push-back"
        );
    }
}

#[test]
fn b2_defers_the_next_perturbation_cascading() {
    // 3x3, B2 fires only at the centre. Each centre pop defers the next
    // centre pair to the back of the queue, so the centre pairs of
    // odd-numbered ranks (deferred by their even-ranked predecessors)
    // drain after everything else: the last 4 queries are all at the
    // centre and carry exactly the odd-ranked corners.
    let (pairs, base) = run(&only(2, AT_CENTER), 3);
    let center = Location::new(1, 1);
    let ranked = Corner::ranked_by_distance(base.pixel(center));
    let tail = &pairs[pairs.len() - 4..];
    for (i, p) in tail.iter().enumerate() {
        assert_eq!(p.location, center, "tail query {i} not at the centre: {p}");
    }
    let mut tail_corners: Vec<Corner> = tail.iter().map(|p| p.corner).collect();
    tail_corners.sort();
    let mut expected = vec![ranked[1], ranked[3], ranked[5], ranked[7]];
    expected.sort();
    assert_eq!(tail_corners, expected, "tail is not the deferred odd ranks");
    // Even-ranked centre pairs pop undisturbed at the head of their
    // block. Transcript blocks alternate between 9 entries (centre
    // present) and 8 (centre deferred), so the even-rank heads sit at
    // positions 0, 17, 34, 51.
    for (pos, rank) in [(0usize, 0usize), (17, 2), (34, 4), (51, 6)] {
        let head = pairs[pos];
        assert_eq!(head.location, center, "head at {pos} moved");
        assert_eq!(head.corner, ranked[rank], "head at {pos} has wrong rank");
    }
}

#[test]
fn b3_checks_location_neighbors_immediately() {
    // 5x5, B3 fires at centre distance < 1.5 (centre + ring 1). The first
    // pop is (centre, farthest corner); eager checking then floods
    // location-wise: ring 1 (children of the centre), then ring 2
    // (children of ring 1) — all with the same corner — before any other
    // corner is touched. 25 locations in total.
    let (pairs, base) = run(&only(3, "center(l) < 1.5"), 5);
    let first_corner = Corner::ranked_by_distance(base.pixel(Location::new(2, 2)))[0];
    for (i, p) in pairs[..25].iter().enumerate() {
        assert_eq!(
            p.corner, first_corner,
            "query {i} switched corner before the eager flood finished: {p}"
        );
    }
    // The flood is breadth-first from the centre: ring distances are
    // non-decreasing.
    let center = Location::new(2, 2);
    let dists: Vec<u16> = pairs[..25]
        .iter()
        .map(|p| p.location.distance(center))
        .collect();
    for w in dists.windows(2) {
        assert!(w[0] <= w[1], "eager flood not breadth-first: {dists:?}");
    }
}

#[test]
fn b4_drains_all_corners_at_the_center_first() {
    // 3x3, B4 fires only at the centre. The first pop is the centre's
    // farthest corner; eager perturbation-checking then recursively
    // queries the centre's remaining 7 corners (queries 2..=8), in rank
    // order, before any other location.
    let (pairs, base) = run(&only(4, AT_CENTER), 3);
    let center = Location::new(1, 1);
    let ranked = Corner::ranked_by_distance(base.pixel(center));
    for (i, p) in pairs[..8].iter().enumerate() {
        assert_eq!(
            p.location, center,
            "query {i} left the centre too early: {p}"
        );
        assert_eq!(p.corner, ranked[i], "query {i} out of rank order: {p}");
    }
}

#[test]
fn false_program_follows_the_initial_order_exactly() {
    // Sanity anchor for the tests above: with all conditions false the
    // transcript must be exactly the documented initial order.
    let (pairs, base) = run(&Program::constant(false), 3);
    // Blocks of 9 share a rank; within a block, centre-out.
    let pix = base.pixel(Location::new(0, 0)); // uniform image
    for (block, chunk) in pairs.chunks(9).enumerate() {
        let rank_dist = pix.distance(chunk[0].corner.as_pixel());
        for p in chunk {
            assert_eq!(
                pix.distance(p.corner.as_pixel()),
                rank_dist,
                "block {block}"
            );
        }
        assert_eq!(
            chunk[0].location,
            Location::new(1, 1),
            "block {block} starts centre"
        );
    }
}
