//! Integration tests of the targeted-attack extension: every attack can be
//! pointed at a specific wrong class, and the goal semantics line up
//! across the sketch and the baselines.

use oppsla::attacks::{Attack, RandomPairs, SketchProgramAttack, SparseRs, SparseRsConfig};
use oppsla::core::dsl::Program;
use oppsla::core::goal::AttackGoal;
use oppsla::core::image::Image;
use oppsla::core::oracle::{FnClassifier, Oracle};
use oppsla::core::pair::{Location, Pixel};
use oppsla::core::sketch::{run_sketch_with_goal, SketchOutcome};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A 3-class classifier: clean images are class 0; a white pixel at
/// `to_one` flips to class 1; a black pixel at `to_two` flips to class 2.
fn three_way(to_one: Location, to_two: Location) -> FnClassifier<impl Fn(&Image) -> Vec<f32>> {
    FnClassifier::new(3, move |img: &Image| {
        if img.pixel(to_one) == Pixel([1.0, 1.0, 1.0]) {
            vec![0.1, 0.8, 0.1]
        } else if img.pixel(to_two) == Pixel([0.0, 0.0, 0.0]) {
            vec![0.1, 0.1, 0.8]
        } else {
            vec![0.8, 0.1, 0.1]
        }
    })
}

fn grey() -> Image {
    Image::filled(5, 5, Pixel([0.5, 0.5, 0.5]))
}

#[test]
fn targeted_sketch_finds_only_the_requested_class() {
    let clf = three_way(Location::new(1, 1), Location::new(3, 3));
    for (target, expected_loc, expected_pixel) in [
        (1usize, Location::new(1, 1), Pixel([1.0, 1.0, 1.0])),
        (2, Location::new(3, 3), Pixel([0.0, 0.0, 0.0])),
    ] {
        let mut oracle = Oracle::new(&clf);
        let outcome = run_sketch_with_goal(
            &Program::constant(false),
            &mut oracle,
            &grey(),
            0,
            AttackGoal::Targeted(target),
        );
        match outcome {
            SketchOutcome::Success { pair, .. } => {
                assert_eq!(pair.location, expected_loc, "target {target}");
                assert_eq!(pair.corner.as_pixel(), expected_pixel, "target {target}");
            }
            other => panic!("target {target}: expected success, got {other:?}"),
        }
    }
}

#[test]
fn targeted_sketch_exhausts_when_target_unreachable() {
    // Class 2 is reachable, class 1 is not: no pixel triggers it.
    let clf = FnClassifier::new(3, move |img: &Image| {
        if img.pixel(Location::new(2, 2)) == Pixel([0.0, 0.0, 0.0]) {
            vec![0.1, 0.1, 0.8]
        } else {
            vec![0.8, 0.1, 0.1]
        }
    });
    let mut oracle = Oracle::new(&clf);
    let outcome = run_sketch_with_goal(
        &Program::constant(false),
        &mut oracle,
        &grey(),
        0,
        AttackGoal::Targeted(1),
    );
    assert!(
        matches!(outcome, SketchOutcome::Exhausted { .. }),
        "{outcome:?}"
    );
    // Untargeted succeeds on the same classifier (via class 2).
    let mut oracle = Oracle::new(&clf);
    let outcome = run_sketch_with_goal(
        &Program::constant(false),
        &mut oracle,
        &grey(),
        0,
        AttackGoal::Untargeted,
    );
    assert!(outcome.is_success());
}

#[test]
fn targeted_baselines_respect_the_goal() {
    let clf = three_way(Location::new(0, 4), Location::new(4, 0));
    let goal = AttackGoal::Targeted(2);
    let attacks: Vec<Box<dyn Attack>> = vec![
        Box::new(SketchProgramAttack::new(Program::constant(false)).with_goal(goal)),
        Box::new(RandomPairs::default().with_goal(goal)),
        Box::new(
            SparseRs::new(SparseRsConfig {
                max_iterations: 5_000,
                ..SparseRsConfig::default()
            })
            .with_goal(goal),
        ),
    ];
    for attack in &attacks {
        let mut oracle = Oracle::new(&clf);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        match attack.attack(&mut oracle, &grey(), 0, &mut rng) {
            oppsla::attacks::AttackOutcome::Success { location, .. } => {
                assert_eq!(location, Location::new(4, 0), "{}", attack.name());
            }
            other => panic!("{}: expected success, got {other}", attack.name()),
        }
    }
}

#[test]
fn untargeted_goal_matches_legacy_behaviour() {
    let clf = three_way(Location::new(1, 2), Location::new(3, 1));
    let legacy = SketchProgramAttack::new(Program::paper_example());
    let explicit =
        SketchProgramAttack::new(Program::paper_example()).with_goal(AttackGoal::Untargeted);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut o1 = Oracle::new(&clf);
    let mut o2 = Oracle::new(&clf);
    assert_eq!(
        legacy.attack(&mut o1, &grey(), 0, &mut rng),
        explicit.attack(&mut o2, &grey(), 0, &mut rng)
    );
}

#[test]
fn targeted_attacks_usually_cost_more_queries() {
    // Reaching a *specific* class is a strictly harder goal, so the
    // targeted sketch can never finish faster than the untargeted one on
    // the same queue order.
    let clf = three_way(Location::new(1, 1), Location::new(3, 3));
    let run = |goal| {
        let mut oracle = Oracle::new(&clf);
        run_sketch_with_goal(&Program::constant(false), &mut oracle, &grey(), 0, goal)
    };
    let untargeted = run(AttackGoal::Untargeted);
    let targeted = run(AttackGoal::Targeted(2));
    assert!(untargeted.is_success() && targeted.is_success());
    assert!(targeted.queries() >= untargeted.queries());
}
