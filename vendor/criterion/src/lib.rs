//! Offline vendored subset of the `criterion` bench API.
//!
//! Supports the surface this workspace's benches use: `criterion_group!`,
//! `criterion_main!`, [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] and [`Bencher::iter`]. Measurement is a
//! simple calibrated loop reporting mean wall-clock time per iteration —
//! no warm-up analysis, outlier rejection, or HTML reports.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measuring time per benchmark.
const TARGET: Duration = Duration::from_millis(200);

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one benchmark and prints its mean iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(name, &mut f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }

    /// Configuration hook kept for API compatibility; returns `self`.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (kept for API compatibility; the calibrated
    /// loop in [`Bencher::iter`] ignores it).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, name), &mut f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the bench closure; its [`iter`](Bencher::iter) runs the
/// measured routine.
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    /// Measures `routine`, storing its mean time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: find an iteration count that runs ≥ ~TARGET.
        let mut iters: u64 = 1;
        let total = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET || iters >= 1 << 30 {
                break elapsed;
            }
            // Scale towards the target with headroom, at least doubling.
            let scale = (TARGET.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)).ceil() as u64;
            iters = iters.saturating_mul(scale.clamp(2, 100));
        };
        self.mean_ns = total.as_secs_f64() * 1e9 / iters as f64;
    }

    /// Measures `routine` on fresh input from `setup`, excluding the
    /// setup time from the mean.
    pub fn iter_with_setup<S, I, O, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut iters: u64 = 1;
        let total = loop {
            let mut measured = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                measured += start.elapsed();
            }
            if measured >= TARGET || iters >= 1 << 30 {
                break measured;
            }
            let scale = (TARGET.as_secs_f64() / measured.as_secs_f64().max(1e-9)).ceil() as u64;
            iters = iters.saturating_mul(scale.clamp(2, 100));
        };
        self.mean_ns = total.as_secs_f64() * 1e9 / iters as f64;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    let mut bencher = Bencher { mean_ns: f64::NAN };
    f(&mut bencher);
    if bencher.mean_ns.is_nan() {
        println!("{name:<40} (no measurement: Bencher::iter was not called)");
    } else {
        println!("{name:<40} {:>14.1} ns/iter", bencher.mean_ns);
    }
}

/// Bundles bench functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { mean_ns: f64::NAN };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x
        });
        assert!(b.mean_ns.is_finite() && b.mean_ns > 0.0);
    }

    #[test]
    fn group_and_function_apis_compose() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1u32 + 1));
        let mut g = c.benchmark_group("grp");
        g.bench_function("noop", |b| b.iter(|| 2u32 * 2));
        g.finish();
    }
}
