//! Offline vendored subset of the `proptest` API.
//!
//! Provides the strategy combinators and macros this workspace's property
//! tests use: range/`any`/`Just`/tuple/array strategies, `prop_map`,
//! `prop_oneof!`, `proptest::collection::vec`, the assertion macros, and
//! the `proptest!` runner macro. Differences from real proptest:
//!
//! - **No shrinking.** A failing case reports its inputs and panics.
//! - **Deterministic seeding.** The RNG seed derives from the test name,
//!   so failures reproduce exactly on re-run.
//! - String "regex" strategies only honour a trailing `{lo,hi}` length
//!   bound and otherwise generate printable characters.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! The deterministic case-generation RNG.

    /// SplitMix64-based test RNG.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds deterministically from a test name.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name gives a stable per-test seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw below `width` (rejection sampled, no modulo bias).
        pub fn below(&mut self, width: u64) -> u64 {
            debug_assert!(width > 0);
            let zone = u64::MAX - (u64::MAX - width + 1) % width;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % width;
                }
            }
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// An assertion failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values of an associated type.
///
/// Object-safe: `sample` takes `&self`, combinators are `Sized`-gated.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates with `self`, then with the strategy `f` returns.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// `prop_flat_map` combinator.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union of boxed strategies, built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (weight, strat) in &self.arms {
            if pick < *weight as u64 {
                return strat.sample(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weights covered the whole range")
    }
}

// ---- primitive sampling ----

/// Primitives with full-domain and range sampling.
pub trait SampleValue: Sized + Copy + PartialOrd {
    /// Uniform over the full domain (floats: a "reasonable" spread).
    fn sample_any(rng: &mut TestRng) -> Self;
    /// Uniform in `[lo, hi)`.
    fn sample_below(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
}

macro_rules! sample_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleValue for $t {
            fn sample_any(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
            fn sample_below(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                assert!(lo < hi, "empty strategy range");
                let width = (hi as i128 - lo as i128) as u64;
                (lo as i128 + rng.below(width) as i128) as $t
            }
        }
    )*};
}

sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleValue for f64 {
    fn sample_any(rng: &mut TestRng) -> Self {
        // Signed spread over a few orders of magnitude; full-bit-pattern
        // floats (inf/NaN) are rarely what property tests want.
        (rng.unit_f64() - 0.5) * 2e6
    }
    fn sample_below(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
        assert!(lo < hi, "empty strategy range");
        lo + rng.unit_f64() * (hi - lo)
    }
}

impl SampleValue for f32 {
    fn sample_any(rng: &mut TestRng) -> Self {
        f64::sample_any(rng) as f32
    }
    fn sample_below(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
        assert!(lo < hi, "empty strategy range");
        lo + (rng.unit_f64() as f32) * (hi - lo)
    }
}

impl<T: SampleValue> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::sample_below(self.start, self.end, rng)
    }
}

impl<T: SampleValue> Strategy for RangeInclusive<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        // Sampled as a half-open range where exactness at the top matters
        // little for property generation; integer top values are included.
        let (lo, hi) = (*self.start(), *self.end());
        if lo == hi {
            return lo;
        }
        T::sample_below(lo, hi, rng)
    }
}

/// Types usable with [`any`].
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_via_sample {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                <$t as SampleValue>::sample_any(rng)
            }
        }
    )*};
}

arbitrary_via_sample!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for a primitive type.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

// ---- composite strategies ----

macro_rules! strategy_tuple {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

strategy_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
);

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|i| self[i].sample(rng))
    }
}

/// String strategies from pattern literals. Only a trailing `{lo,hi}`
/// repetition bound is honoured; characters are printable ASCII plus a
/// sprinkle of non-ASCII.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_repeat_bounds(self).unwrap_or((0, 32));
        let len = lo as u64 + rng.below((hi - lo + 1) as u64);
        let mut out = String::new();
        for _ in 0..len {
            let c = match rng.below(20) {
                0 => char::from_u32(0xA1 + rng.below(0x500) as u32).unwrap_or('¿'),
                _ => (0x20 + rng.below(0x5F) as u8) as char,
            };
            out.push(c);
        }
        out
    }
}

fn parse_repeat_bounds(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_suffix('}')?;
    let brace = body.rfind('{')?;
    let mut parts = body[brace + 1..].splitn(2, ',');
    let lo = parts.next()?.trim().parse().ok()?;
    let hi = parts.next()?.trim().parse().ok()?;
    (lo <= hi).then_some((lo, hi))
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A length specification for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    /// Strategy for vectors of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy [`vec`] returns.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

// ---- macros ----

/// Weighted or unweighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {}", ::core::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: `{:?}` == `{:?}`", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{:?}` == `{:?}`: {}", l, r, ::std::format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: `{:?}` != `{:?}`", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{:?}` != `{:?}`: {}", l, r, ::std::format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Rejects the current case (it is regenerated, not failed) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Defines property tests: each `fn` runs its body over generated inputs.
#[macro_export]
macro_rules! proptest {
    // The `@cfg` arm must come first: the unconfigured entry arm below is
    // a catch-all that would otherwise swallow `@cfg` recursions.
    (@cfg ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    ::core::concat!(::core::module_path!(), "::", ::core::stringify!($name)),
                );
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(16).max(64);
                while passed < config.cases {
                    attempts += 1;
                    ::std::assert!(
                        attempts <= max_attempts,
                        "proptest: too many rejected cases ({} attempts, {} passed)",
                        attempts, passed,
                    );
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    // Render inputs before the body runs: the body may move
                    // them, and a failure must still report them.
                    let inputs = ::std::format!(
                        ::core::concat!($(::core::stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let case = (move || -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match case {
                        ::core::result::Result::Ok(()) => passed += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject) => continue,
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            ::std::panic!(
                                "proptest case {} failed: {}\ninputs: {}",
                                passed + 1,
                                msg,
                                inputs,
                            );
                        }
                    }
                }
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

pub mod prelude {
    //! The usual imports for property tests.
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };

    /// Alias so `prop::collection::vec(...)` works like real proptest.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_any_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("bounds");
        for _ in 0..500 {
            let v = (3u16..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let f = (-2.0f32..2.0).sample(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let s = collection::vec(0u8..4, 2..6).sample(&mut rng);
            assert!((2..6).contains(&s.len()));
            assert!(s.iter().all(|&b| b < 4));
        }
    }

    #[test]
    fn oneof_union_uses_every_arm() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::test_runner::TestRng::deterministic("arms");
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_runner_smoke(x in 0usize..50, flip in any::<bool>()) {
            prop_assume!(x != 13);
            prop_assert!(x < 50);
            prop_assert_ne!(x, 13);
            let y = if flip { x } else { x };
            prop_assert_eq!(x, y, "copies diverged at {}", x);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn macro_runner_reports_failures() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
