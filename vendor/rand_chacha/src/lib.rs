//! Offline vendored ChaCha8 random number generator.
//!
//! Implements the real ChaCha stream cipher core (8 rounds) over the
//! vendored `rand` traits. The keystream is a genuine ChaCha8 keystream
//! (constants, key schedule, quarter rounds per RFC 8439 with a 64-bit
//! block counter), but the word-consumption order is this crate's own —
//! stream compatibility with upstream `rand_chacha` is *not* a goal, only
//! high-quality deterministic randomness for seeded experiments.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

/// A ChaCha stream cipher RNG with 8 rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Key words (8) from the seed.
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unconsumed word in `block`; 16 means "refill".
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Words 14–15 are the nonce, fixed to zero (single-stream use).
        let initial = state;
        for _ in 0..4 {
            // One double round: a column round then a diagonal round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (&s, &i)) in self.block.iter_mut().zip(state.iter().zip(initial.iter())) {
            *out = s.wrapping_add(i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index == 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        let mut rng = ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        };
        rng.refill();
        rng.index = 0;
        rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn blocks_advance_without_repeating() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        // Consume more than one 16-word block and check for obvious cycles.
        let words: Vec<u32> = (0..64).map(|_| rng.next_u32()).collect();
        assert_ne!(&words[..16], &words[16..32], "block counter did not advance");
    }

    #[test]
    fn clone_resumes_at_same_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..21 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn bits_look_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut ones = 0u32;
        const N: u32 = 1000;
        for _ in 0..N {
            ones += rng.next_u32().count_ones();
        }
        let expected = N * 16;
        let dev = ones.abs_diff(expected);
        assert!(dev < N * 2, "bit balance off: {ones} ones in {} bits", N * 32);
    }
}
