//! Offline vendored subset of the `serde` API.
//!
//! The build container has no network access, so the workspace vendors a
//! self-contained serialization layer: a JSON-shaped [`Value`] data model,
//! [`Serialize`]/[`Deserialize`] traits over it, and derive macros
//! (re-exported from the vendored `serde_derive`). `serde_json` (also
//! vendored) renders [`Value`] to and from JSON text.
//!
//! The derive output follows real serde's externally-tagged JSON
//! conventions (named struct → object, newtype → inner value, unit enum
//! variant → string, data variant → single-key object), so files written
//! by this stub look like ordinary serde JSON. Only self round-trips are
//! required by the workspace, though.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value: the serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`; integers in `±2^53` are exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// A one-word description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// "expected X while deserializing Y" constructor used by derives.
    pub fn expected(what: &str, context: &str) -> Error {
        Error(format!("expected {what} while deserializing {context}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Looks up a field in an object, for derived `Deserialize` impls.
///
/// # Errors
///
/// Returns an error naming the missing field.
pub fn field<'v>(obj: &'v [(String, Value)], name: &str) -> Result<&'v Value, Error> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error(format!("missing field `{name}`")))
}

/// Types convertible into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitives ----

macro_rules! impl_num {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    other => Err(Error::expected("number", other.kind())),
                }
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other.kind())),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other.kind())),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::expected("single-character string", other.kind())),
        }
    }
}

// ---- containers ----

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", other.kind())),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v
            .as_arr()
            .ok_or_else(|| Error::expected("array", v.kind()))?;
        if items.len() != N {
            return Err(Error(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error(format!("array length mismatch (wanted {N})")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+) [$len:expr]),* $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_arr().ok_or_else(|| Error::expected("array", v.kind()))?;
                if items.len() != $len {
                    return Err(Error(format!(
                        "expected {}-tuple, got array of length {}", $len, items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple!(
    (A: 0) [1],
    (A: 0, B: 1) [2],
    (A: 0, B: 1, C: 2) [3],
    (A: 0, B: 1, C: 2, D: 3) [4],
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u16::from_value(&42u16.to_value()).unwrap(), 42);
        assert_eq!(f32::from_value(&0.25f32.to_value()).unwrap(), 0.25);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let arr = [0.5f32, 1.5, -2.0];
        assert_eq!(<[f32; 3]>::from_value(&arr.to_value()).unwrap(), arr);
        let pair = ("name".to_string(), 7usize);
        assert_eq!(
            <(String, usize)>::from_value(&pair.to_value()).unwrap(),
            pair
        );
        let opt: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&opt.to_value()).unwrap(), None);
    }

    #[test]
    fn shape_mismatches_error() {
        assert!(u8::from_value(&Value::Str("x".into())).is_err());
        assert!(<[u8; 2]>::from_value(&Value::Arr(vec![Value::Num(1.0)])).is_err());
        assert!(Vec::<u8>::from_value(&Value::Bool(false)).is_err());
        assert!(field(&[], "missing").is_err());
    }
}
