//! Offline vendored `#[derive(Serialize, Deserialize)]` macros.
//!
//! Hand-rolled over `proc_macro` (no `syn`/`quote` available offline).
//! Supports the shapes this workspace actually derives on:
//!
//! - named-field structs
//! - tuple structs (newtype and multi-field)
//! - enums with unit, newtype, tuple and struct variants
//!
//! Not supported (panics with a clear message): generics, unions,
//! `#[serde(...)]` attributes. The generated code targets the vendored
//! `serde` crate's `Value` data model and follows real serde's
//! externally-tagged JSON conventions.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---- parsed shapes ----

enum Fields {
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple fields; only the arity matters.
    Tuple(usize),
    /// No fields at all.
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

// ---- token walking ----

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic type `{name}`");
    }
    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                _ => panic!("expected enum body for `{name}`"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("vendored serde_derive cannot derive for `{other}` items"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` plus the bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `pub(crate)` and friends
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Advances past one type (or expression), stopping at a top-level `,`.
/// Only angle-bracket depth needs tracking; delimited groups are atomic.
fn skip_until_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        skip_until_comma(&tokens, &mut i);
        i += 1; // the comma (or past the end)
        fields.push(name);
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_until_comma(&tokens, &mut i);
        i += 1;
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant, then the separating comma.
        skip_until_comma(&tokens, &mut i);
        i += 1;
        variants.push(Variant { name, fields });
    }
    variants
}

// ---- code generation ----

fn obj_literal(entries: &[(String, String)]) -> String {
    let inner: Vec<String> = entries
        .iter()
        .map(|(k, v)| format!("(::std::string::String::from(\"{k}\"), {v})"))
        .collect();
    format!("::serde::Value::Obj(::std::vec![{}])", inner.join(", "))
}

fn render_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let entries: Vec<(String, String)> = names
                        .iter()
                        .map(|f| (f.clone(), format!("::serde::Serialize::to_value(&self.{f})")))
                        .collect();
                    obj_literal(&entries)
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Arr(::std::vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vname}(f0) => {},",
                            obj_literal(&[(vname.clone(), "::serde::Serialize::to_value(f0)".to_string())])
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Serialize::to_value(f{k})"))
                                .collect();
                            let arr = format!(
                                "::serde::Value::Arr(::std::vec![{}])",
                                items.join(", ")
                            );
                            format!(
                                "{name}::{vname}({}) => {},",
                                binds.join(", "),
                                obj_literal(&[(vname.clone(), arr)])
                            )
                        }
                        Fields::Named(fnames) => {
                            let binds = fnames.join(", ");
                            let entries: Vec<(String, String)> = fnames
                                .iter()
                                .map(|f| (f.clone(), format!("::serde::Serialize::to_value({f})")))
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => {},",
                                obj_literal(&[(vname.clone(), obj_literal(&entries))])
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{}\n}}\n\
                 }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn render_named_build(type_path: &str, fnames: &[String], obj_expr: &str) -> String {
    let fields: Vec<String> = fnames
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(::serde::field({obj_expr}, \"{f}\")?)?,"
            )
        })
        .collect();
    format!("::core::result::Result::Ok({type_path} {{ {} }})", fields.join(" "))
}

fn render_tuple_build(type_path: &str, n: usize, arr_expr: &str, context: &str) -> String {
    let items: Vec<String> = (0..n)
        .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
        .collect();
    format!(
        "{{ let items = ({arr_expr}).as_arr().ok_or_else(|| ::serde::Error::expected(\"array\", \"{context}\"))?;\n\
         if items.len() != {n} {{ return ::core::result::Result::Err(::serde::Error::expected(\"array of length {n}\", \"{context}\")); }}\n\
         let items: &[::serde::Value] = items;\n\
         ::core::result::Result::Ok({type_path}({})) }}",
        items.join(", ")
    )
}

fn render_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fnames) => format!(
                    "let obj = v.as_obj().ok_or_else(|| ::serde::Error::expected(\"object\", \"{name}\"))?;\n{}",
                    render_named_build(name, fnames, "obj")
                ),
                Fields::Tuple(1) => format!(
                    "::core::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                Fields::Tuple(n) => render_tuple_build(name, *n, "v", name),
                Fields::Unit => format!("::core::result::Result::Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
                 }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{0}\" => ::core::result::Result::Ok({name}::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    let build = match &v.fields {
                        Fields::Unit => return None,
                        Fields::Tuple(1) => format!(
                            "::core::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(inner)?))"
                        ),
                        Fields::Tuple(n) => render_tuple_build(
                            &format!("{name}::{vname}"),
                            *n,
                            "inner",
                            &format!("{name}::{vname}"),
                        ),
                        Fields::Named(fnames) => format!(
                            "{{ let obj = inner.as_obj().ok_or_else(|| ::serde::Error::expected(\"object\", \"{name}::{vname}\"))?;\n{} }}",
                            render_named_build(&format!("{name}::{vname}"), fnames, "obj")
                        ),
                    };
                    Some(format!("\"{vname}\" => {build},"))
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n{unit}\n\
                 other => ::core::result::Result::Err(::serde::Error(::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                 }},\n\
                 ::serde::Value::Obj(entries) if entries.len() == 1 => {{\n\
                 let (tag, inner) = &entries[0];\n\
                 match tag.as_str() {{\n{data}\n\
                 other => ::core::result::Result::Err(::serde::Error(::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                 }}\n\
                 }},\n\
                 other => ::core::result::Result::Err(::serde::Error::expected(\"string or single-key object\", other.kind())),\n\
                 }}\n\
                 }}\n\
                 }}",
                unit = unit_arms.join("\n"),
                data = data_arms.join("\n"),
            )
        }
    }
}
