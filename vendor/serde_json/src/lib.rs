//! Offline vendored JSON serialization over the vendored `serde` crate.
//!
//! Renders `serde::Value` to JSON text and parses it back, exposing the
//! `to_string` / `to_string_pretty` / `from_str` / [`Error`] surface this
//! workspace uses. Numbers are `f64`; floats print with Rust's shortest
//! round-trip formatting, so every finite value survives a text round
//! trip exactly.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON serialization or parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Returns an error when a number is non-finite (JSON has no NaN/inf).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out)?;
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Returns an error when a number is non-finite.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Parses JSON text into any `Deserialize` type.
///
/// # Errors
///
/// Returns an error on malformed JSON, trailing input, or shape mismatch.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

// ---- writer ----

fn write_value(
    v: &Value,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => {
            if !n.is_finite() {
                return Err(Error::new("JSON cannot represent a non-finite number"));
            }
            if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
                // Integral values print without a fraction, like serde_json.
                out.push_str(&format!("{}", *n as i64));
            } else {
                // Rust's float Display is shortest-round-trip.
                out.push_str(&format!("{n}"));
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Arr(items) => {
            write_seq(items.iter(), items.len(), indent, depth, out, |item, d, o| {
                write_value(item, indent, d, o)
            })?;
        }
        Value::Obj(entries) => {
            out.push('{');
            write_entries(entries, indent, depth, out)?;
            out.push('}');
        }
    }
    Ok(())
}

fn write_seq<'a, I, T: 'a>(
    items: I,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    mut write_item: impl FnMut(&'a T, usize, &mut String) -> Result<(), Error>,
) -> Result<(), Error>
where
    I: Iterator<Item = &'a T>,
{
    out.push('[');
    if len == 0 {
        out.push(']');
        return Ok(());
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(indent, depth + 1, out);
        write_item(item, depth + 1, out)?;
    }
    newline_indent(indent, depth, out);
    out.push(']');
    Ok(())
}

fn write_entries(
    entries: &[(String, Value)],
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
) -> Result<(), Error> {
    for (i, (key, value)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(indent, depth + 1, out);
        write_escaped(key, out);
        out.push(':');
        if indent.is_some() {
            out.push(' ');
        }
        write_value(value, indent, depth + 1, out)?;
    }
    if !entries.is_empty() {
        newline_indent(indent, depth, out);
    }
    Ok(())
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over a plain run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not reconstructed; lone
                            // surrogates become the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_through_text() {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str("conv \"1\"\n".into())),
            ("dims".into(), Value::Arr(vec![Value::Num(3.0), Value::Num(32.0)])),
            ("bias".into(), Value::Num(0.10000000149011612)),
            ("ok".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
        ]);
        for text in [to_string(&ValueWrap(v.clone())).unwrap(), to_string_pretty(&ValueWrap(v.clone())).unwrap()] {
            let back: ValueWrap = from_str(&text).unwrap();
            assert_eq!(back.0, v);
        }
    }

    /// Test helper: serialize/deserialize a raw `Value` verbatim.
    #[derive(Debug, PartialEq)]
    struct ValueWrap(Value);
    impl Serialize for ValueWrap {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
    impl Deserialize for ValueWrap {
        fn from_value(v: &Value) -> Result<Self, serde::Error> {
            Ok(ValueWrap(v.clone()))
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1f32, -2.5e-7, 1.0, f32::MIN_POSITIVE, 3.4e38] {
            let text = to_string(&x).unwrap();
            let back: f32 = from_str(&text).unwrap();
            assert_eq!(back, x, "{text}");
        }
        for x in [0.1f64, 1e300, -7.25] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, x, "{text}");
        }
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(to_string(&42usize).unwrap(), "42");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(to_string(&1.0f64).unwrap(), "1");
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<u8>>("[1, 2").is_err());
        assert!(from_str::<u8>("1 garbage").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn typed_round_trip() {
        let v: Vec<(String, f32)> = vec![("a".into(), 0.5), ("b".into(), -1.25)];
        let text = to_string_pretty(&v).unwrap();
        let back: Vec<(String, f32)> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }
}
